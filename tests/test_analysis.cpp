// Basestation analysis: file correlation into vocalizations, activity and
// spatial profiles.
#include <gtest/gtest.h>

#include "analysis/correlate.h"
#include "world_fixture.h"

namespace enviromic::analysis {
namespace {

using sim::Time;

storage::ChunkMeta meta(net::EventId ev, std::uint64_t key, double a, double b,
                        net::NodeId rec) {
  storage::ChunkMeta m;
  m.event = ev;
  m.key = key;
  m.start = Time::seconds(a);
  m.end = Time::seconds(b);
  m.recorded_by = rec;
  m.bytes = 1000;
  return m;
}

TEST(Correlate, SingleFileSingleVocalization) {
  storage::FileIndex idx;
  idx.add(meta({1, 0}, 1, 10, 12, 5), 5);
  const auto v = correlate_files(idx, {{5, {0, 0}}});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].files.size(), 1u);
  EXPECT_EQ(v[0].start, Time::seconds_i(10));
  EXPECT_EQ(v[0].end, Time::seconds_i(12));
}

TEST(Correlate, AdjacentFilesFromSamePlaceMerge) {
  // Two files of the same intermittent vocalization: close in time, same
  // locality (paper §II-A.1: "a temporally separated event ... may give
  // rise to multiple files").
  storage::FileIndex idx;
  idx.add(meta({1, 0}, 1, 10, 12, 5), 5);
  idx.add(meta({2, 0}, 2, 12.8, 14, 6), 6);
  const std::map<net::NodeId, sim::Position> pos = {{5, {0, 0}}, {6, {2, 0}}};
  const auto v = correlate_files(idx, pos);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].files.size(), 2u);
  EXPECT_EQ(v[0].end, Time::seconds_i(14));
}

TEST(Correlate, DistantFilesDoNotMerge) {
  storage::FileIndex idx;
  idx.add(meta({1, 0}, 1, 10, 12, 5), 5);
  idx.add(meta({2, 0}, 2, 12.5, 14, 6), 6);
  const std::map<net::NodeId, sim::Position> pos = {{5, {0, 0}},
                                                    {6, {100, 100}}};
  EXPECT_EQ(correlate_files(idx, pos).size(), 2u);
}

TEST(Correlate, TemporallySeparatedFilesDoNotMerge) {
  storage::FileIndex idx;
  idx.add(meta({1, 0}, 1, 10, 12, 5), 5);
  idx.add(meta({2, 0}, 2, 30, 32, 5), 5);
  const auto v = correlate_files(idx, {{5, {0, 0}}});
  EXPECT_EQ(v.size(), 2u);
}

TEST(Correlate, CentroidAveragesRecorderPositions) {
  storage::FileIndex idx;
  idx.add(meta({1, 0}, 1, 10, 11, 5), 5);
  idx.add(meta({1, 0}, 2, 11, 12, 6), 6);
  const std::map<net::NodeId, sim::Position> pos = {{5, {0, 0}}, {6, {4, 0}}};
  const auto v = correlate_files(idx, pos);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NEAR(v[0].centroid.x, 2.0, 1e-9);
}

TEST(Correlate, ChainMergingFollowsMovingCentroid) {
  // A moving source: consecutive files drift spatially but each hop is
  // within range — they chain into one vocalization.
  storage::FileIndex idx;
  const std::map<net::NodeId, sim::Position> pos = {
      {1, {0, 0}}, {2, {6, 0}}, {3, {12, 0}}};
  idx.add(meta({1, 0}, 1, 10, 12, 1), 1);
  idx.add(meta({2, 0}, 2, 12.2, 14, 2), 2);
  idx.add(meta({3, 0}, 3, 14.2, 16, 3), 3);
  const auto v = correlate_files(idx, pos);
  EXPECT_EQ(v.size(), 1u);
}

TEST(ActivityProfile, BinsEventsAndSeconds) {
  std::vector<Vocalization> events(3);
  events[0].start = Time::seconds_i(10);
  events[0].covered = Time::seconds_i(4);
  events[1].start = Time::seconds_i(70);
  events[1].covered = Time::seconds_i(2);
  events[2].start = Time::seconds_i(80);
  events[2].covered = Time::seconds_i(1);
  const auto p =
      activity_profile(events, Time::seconds_i(180), Time::seconds_i(60));
  ASSERT_GE(p.events_per_bin.size(), 3u);
  EXPECT_EQ(p.events_per_bin[0], 1u);
  EXPECT_EQ(p.events_per_bin[1], 2u);
  EXPECT_EQ(p.events_per_bin[2], 0u);
  EXPECT_DOUBLE_EQ(p.seconds_per_bin[1], 3.0);
}

TEST(SpatialProfile, RasterizesCentroids) {
  std::vector<Vocalization> events(2);
  events[0].centroid = {10, 10};
  events[0].recorder_count = 2;
  events[1].centroid = {90, 90};
  events[1].recorder_count = 1;
  const auto grid = spatial_profile(events, 100, 100, 4, 4);
  EXPECT_EQ(grid[0][0], 1u);
  EXPECT_EQ(grid[3][3], 1u);
  EXPECT_EQ(grid[1][1], 0u);
}

TEST(Correlate, EndToEndDuplicateLeaderFilesMerge) {
  // Force duplicate leaders via loss; the basestation merges the parallel
  // files back into roughly one vocalization per true event.
  testing::WorldBuilder b;
  b.mode(core::Mode::kCooperativeOnly).seed(251).perfect_detection();
  b.cfg.channel.loss_probability = 0.3;
  auto world = b.grid(4, 4);
  for (int e = 0; e < 5; ++e) {
    testing::add_event(*world, {3, 3}, 10.0 + 30.0 * e, 18.0 + 30.0 * e);
  }
  world->start();
  world->run_until(sim::Time::seconds_i(170));
  const auto files = world->drain_all();
  std::map<net::NodeId, sim::Position> positions;
  for (std::size_t i = 0; i < world->node_count(); ++i) {
    positions[world->node(i).id()] = world->node(i).position();
  }
  const auto vocal = correlate_files(files, positions);
  EXPECT_GE(vocal.size(), 4u);
  EXPECT_LE(vocal.size(), 6u);  // ~one per true event even if files > events
  EXPECT_LE(vocal.size(), files.file_count());
}

}  // namespace
}  // namespace enviromic::analysis
