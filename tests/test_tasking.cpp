// Task assignment (paper §II-A.2): seamless rotation, confirm/reject
// semantics, timeouts, recorder-selection policy, self-assignment.
#include <gtest/gtest.h>

#include <map>

#include "world_fixture.h"

namespace enviromic::core {
namespace {

using testing::WorldBuilder;
using testing::add_event;
using testing::sum_nodes;

TEST(Tasking, ExactlyOneRecorderAtATimeLossless) {
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(51)
                   .perfect_detection()
                   .lossless_radio()
                   .grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 25.0);
  world->start();
  world->run_until(sim::Time::seconds_i(30));
  // With no losses the overhearing optimization guarantees one recorder per
  // round: stored recording time must have (almost) no overlap.
  const auto snap = world->snapshot();
  EXPECT_LT(snap.redundancy_ratio, 0.02);
  EXPECT_LT(snap.miss_ratio, 0.15);
}

TEST(Tasking, RecordingRotatesAmongMembers) {
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(52)
                   .perfect_detection()
                   .lossless_radio()
                   .grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 35.0);
  world->start();
  world->run_until(sim::Time::seconds_i(40));
  std::map<net::NodeId, int> tasks;
  for (const auto& act : world->metrics().recording_log()) {
    if (act.appended) ++tasks[act.node];
  }
  // The TTL policy rotates the task over multiple members.
  EXPECT_GE(tasks.size(), 2u);
}

TEST(Tasking, RoundsCompleteAtTaskPeriodCadence) {
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(53)
                   .perfect_detection()
                   .lossless_radio()
                   .grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 25.0);
  world->start();
  world->run_until(sim::Time::seconds_i(30));
  const auto rounds = sum_nodes(
      *world, [](Node& n) { return n.tasking().stats().rounds_completed; });
  // ~20 s of event at 1 s per round (the tail round may run past the end).
  EXPECT_GE(rounds, 17u);
  EXPECT_LE(rounds, 26u);
}

TEST(Tasking, ConfirmTimeoutTriesAnotherMember) {
  WorldBuilder b;
  b.mode(Mode::kCooperativeOnly).seed(54).perfect_detection();
  b.cfg.channel.loss_probability = 0.35;  // force lost confirms
  auto world = b.grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 45.0);
  world->start();
  world->run_until(sim::Time::seconds_i(50));
  const auto timeouts = sum_nodes(
      *world, [](Node& n) { return n.tasking().stats().confirm_timeouts; });
  EXPECT_GE(timeouts, 1u);
  // Despite losses, coverage holds up via retries.
  EXPECT_LT(world->snapshot().miss_ratio, 0.35);
}

TEST(Tasking, RejectsHappenUnderLoss) {
  // A lost TASK_CONFIRM leads the leader to solicit another member, which
  // overheard the original confirm and answers TASK_REJECT (paper Fig 1).
  std::uint64_t rejects = 0;
  for (std::uint64_t seed = 60; seed < 70 && rejects == 0; ++seed) {
    WorldBuilder b;
    b.mode(Mode::kCooperativeOnly).seed(seed).perfect_detection();
    b.cfg.channel.loss_probability = 0.3;
    auto world = b.grid(4, 4);
    add_event(*world, {3, 3}, 5.0, 45.0);
    world->start();
    world->run_until(sim::Time::seconds_i(50));
    rejects = sum_nodes(
        *world, [](Node& n) { return n.recorder().stats().tasks_rejected; });
  }
  EXPECT_GE(rejects, 1u);
}

TEST(Tasking, SeamlessHandoverLeavesNoInterRoundGaps) {
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(55)
                   .perfect_detection()
                   .lossless_radio()
                   .grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 25.0);
  world->start();
  world->run_until(sim::Time::seconds_i(30));
  // Collect recorded intervals; after the first task starts there must be
  // no gap until past the event end.
  util::IntervalSet recorded;
  sim::Time first_start = sim::Time::max();
  for (const auto& act : world->metrics().recording_log()) {
    recorded.add(act.start, act.end);
    first_start = std::min(first_start, act.start);
  }
  // A handshake occasionally exceeds D_ta, so allow a small total gap
  // budget (the paper's plateau likewise sits slightly above the pure
  // startup miss).
  sim::Time gap_total = sim::Time::zero();
  for (const auto& g :
       recorded.gaps_within(first_start, sim::Time::seconds_i(25))) {
    gap_total += g.end - g.start;
  }
  EXPECT_LT(gap_total.to_seconds(), 0.15);
}

// Drive a leader's TaskManager directly against phantom members that never
// answer a TASK_REQUEST, to step through the confirm-timeout strike logic
// without depending on channel loss patterns.
void phantom_heartbeat(Node& leader, net::NodeId id) {
  net::Sensing s;
  s.sender = id;
  s.signal = 1.0;
  s.ttl_seconds = 500.0;
  s.free_bytes = 1 << 20;
  leader.group().handle(s);
}

TEST(Tasking, SingleConfirmTimeoutKeepsMemberSoftState) {
  // Two-strike rule: one silent confirm window only skips the member for the
  // rest of the round; the second consecutive silence drops its soft state.
  // (A single lost TASK_CONFIRM under burst loss used to blacklist a live
  // member for a full heartbeat.)
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(61)
                   .lossless_radio()
                   .grid(2, 2);
  world->start();
  auto& leader = world->node(0);
  phantom_heartbeat(leader, 90);
  phantom_heartbeat(leader, 91);
  ASSERT_EQ(leader.group().member_table_size(), 2u);
  leader.tasking().start(net::EventId{leader.id(), 1}, 0, sim::Time::zero(),
                         sim::Time::zero());

  // Round 0: both phantoms time out once each — still in the soft state.
  world->run_until(sim::Time::millis(450));
  EXPECT_EQ(leader.tasking().stats().confirm_timeouts, 2u);
  EXPECT_EQ(leader.group().member_table_size(), 2u);

  // The retry round strikes both a second consecutive time: now dropped.
  world->run_until(sim::Time::millis(1200));
  EXPECT_EQ(leader.tasking().stats().confirm_timeouts, 4u);
  EXPECT_EQ(leader.group().member_table_size(), 0u);
}

TEST(Tasking, TrafficBetweenTimeoutsClearsTheStrike) {
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(62)
                   .lossless_radio()
                   .grid(2, 2);
  world->start();
  auto& leader = world->node(0);
  phantom_heartbeat(leader, 90);
  phantom_heartbeat(leader, 91);
  leader.tasking().start(net::EventId{leader.id(), 1}, 0, sim::Time::zero(),
                         sim::Time::zero());
  world->run_until(sim::Time::millis(450));
  EXPECT_EQ(leader.tasking().stats().confirm_timeouts, 2u);

  // Node 90 shows signs of life between the rounds (what Node::dispatch does
  // on any Sensing heartbeat): its strike is cleared, so the next timeout is
  // its *first* again and it survives the retry round; 91 stays struck and
  // is dropped by its second consecutive silence.
  phantom_heartbeat(leader, 90);
  leader.tasking().note_member_alive(90);
  world->run_until(sim::Time::millis(1200));
  ASSERT_EQ(leader.group().member_table_size(), 1u);
  EXPECT_EQ(leader.group().fresh_members().at(0).first, net::NodeId{90});
}

TEST(Tasking, LeaderSelfAssignsWhenAlone) {
  // Single node hears the event: it elects itself and must still record.
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(56)
                   .perfect_detection()
                   .lossless_radio()
                   .grid(4, 4);
  add_event(*world, {0, 0}, 5.0, 15.0, /*range=*/1.0);  // only node (0,0)
  world->start();
  world->run_until(sim::Time::seconds_i(20));
  const auto self = sum_nodes(
      *world, [](Node& n) { return n.tasking().stats().self_assignments; });
  EXPECT_GE(self, 1u);
  EXPECT_LT(world->snapshot().miss_ratio, 0.4);
}

TEST(Tasking, HighestTtlPolicyPrefersEmptierMember) {
  // Pre-fill one hearer's store; the leader should assign it fewer tasks.
  WorldBuilder b;
  b.mode(Mode::kCooperativeOnly).seed(57).perfect_detection().lossless_radio();
  auto world = b.grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 45.0);
  // Node at (2,2) is one of the 4 hearers: nodes are 1-indexed row-major,
  // (2,2) -> index 5 -> id 6. Fill ~90% of its flash.
  auto& victim = *world->by_id(6);
  while (victim.store().free_bytes() > victim.flash().capacity_bytes() / 10) {
    storage::Chunk c;
    c.meta.key = victim.store().next_key(99);
    c.meta.bytes = 10000;
    if (!victim.store().append(std::move(c))) break;
  }
  world->start();
  world->run_until(sim::Time::seconds_i(50));
  std::map<net::NodeId, int> tasks;
  for (const auto& act : world->metrics().recording_log()) ++tasks[act.node];
  int other_max = 0;
  for (const auto& [id, cnt] : tasks) {
    if (id != 6) other_max = std::max(other_max, cnt);
  }
  EXPECT_LT(tasks[6], other_max);
}

TEST(Tasking, BestSignalPolicyStillCovers) {
  WorldBuilder b;
  b.mode(Mode::kCooperativeOnly).seed(58).perfect_detection().lossless_radio();
  b.cfg.node_defaults.protocol.recorder_policy = RecorderPolicy::kBestSignal;
  auto world = b.grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 25.0);
  world->start();
  world->run_until(sim::Time::seconds_i(30));
  EXPECT_LT(world->snapshot().miss_ratio, 0.15);
}

TEST(Tasking, NextAssignmentScheduledDtaEarly) {
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(59)
                   .perfect_detection()
                   .lossless_radio()
                   .grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 25.0);
  world->start();
  world->run_until(sim::Time::seconds_i(12));
  for (std::size_t i = 0; i < world->node_count(); ++i) {
    auto& n = world->node(i);
    if (n.tasking().active()) {
      const auto dta = n.cfg().task_assign_delay;
      EXPECT_EQ(n.tasking().current_task_end() - n.tasking().next_assignment_at(),
                dta);
    }
  }
}

}  // namespace
}  // namespace enviromic::core
