// Data-mule retrieval: harvest queries upload and free chunks; coverage is
// preserved in the mule's haul; network storage lifetime extends.
#include <gtest/gtest.h>

#include "world_fixture.h"

namespace enviromic::core {
namespace {

using testing::WorldBuilder;
using testing::add_event;
using testing::sum_nodes;

TEST(Mule, HarvestsAndFreesStorage) {
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(261)
                   .perfect_detection()
                   .lossless_radio()
                   .grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 15.0);
  // The mule walks through the middle of the grid after the event.
  MuleConfig mc;
  mc.speed_ft_s = 1.0;  // slow sweep so every hearer gets drained
  DataMule mule(*world, {{-4, 3}, {10, 3}}, sim::Time::seconds_i(30), mc);
  world->start();
  mule.start();
  world->run_until(sim::Time::seconds_i(20));
  const auto stored_before =
      sum_nodes(*world, [](Node& n) { return n.store().used_payload_bytes(); });
  ASSERT_GT(stored_before, 0u);
  world->run_until(sim::Time::seconds_i(90));
  const auto stored_after =
      sum_nodes(*world, [](Node& n) { return n.store().used_payload_bytes(); });
  EXPECT_LT(stored_after, stored_before / 4);
  EXPECT_GT(mule.chunks_collected(), 5u);
  EXPECT_GT(mule.bytes_collected(), stored_before / 2);
}

TEST(Mule, CollectedChunksCountTowardCoverage) {
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(262)
                   .perfect_detection()
                   .lossless_radio()
                   .grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 15.0);
  MuleConfig mc;
  mc.speed_ft_s = 1.0;  // slow sweep so every hearer gets drained
  DataMule mule(*world, {{-4, 3}, {10, 3}}, sim::Time::seconds_i(30), mc);
  world->start();
  mule.start();
  world->run_until(sim::Time::seconds_i(25));
  const double covered_before = world->snapshot().covered_unique.to_seconds();
  world->run_until(sim::Time::seconds_i(90));
  // Plain snapshot loses the harvested chunks; snapshot_with restores them.
  const double without = world->snapshot().covered_unique.to_seconds();
  const double with =
      world->snapshot_with(mule.collected_metas()).covered_unique.to_seconds();
  EXPECT_LT(without, covered_before * 0.6);
  EXPECT_NEAR(with, covered_before, 0.5);
}

TEST(Mule, InFieldWindowMatchesPath) {
  auto world =
      WorldBuilder{}.mode(Mode::kCooperativeOnly).seed(263).grid(2, 2);
  // 40 ft path at 4 ft/s: in the field for 10 s from t=100.
  DataMule mule(*world, {{0, 0}, {40, 0}}, sim::Time::seconds_i(100));
  world->start();
  mule.start();
  EXPECT_FALSE(mule.in_field(sim::Time::seconds_i(99)));
  EXPECT_TRUE(mule.in_field(sim::Time::seconds_i(105)));
  EXPECT_FALSE(mule.in_field(sim::Time::seconds_i(111)));
}

TEST(Mule, NothingCollectedFromEmptyNetwork) {
  auto world =
      WorldBuilder{}.mode(Mode::kCooperativeOnly).seed(264).grid(3, 3);
  DataMule mule(*world, {{-2, 2}, {8, 2}}, sim::Time::seconds_i(10));
  world->start();
  mule.start();
  world->run_until(sim::Time::seconds_i(60));
  EXPECT_EQ(mule.chunks_collected(), 0u);
}

TEST(Mule, PeriodicVisitsPreventOverflow) {
  // Tight flash + recurring events: without a mule, storage saturates and
  // data is lost; with periodic mule visits the network keeps recording.
  auto build = [](bool with_mule) {
    auto world = WorldBuilder{}
                     .mode(Mode::kCooperativeOnly)
                     .seed(265)
                     .perfect_detection()
                     .lossless_radio()
                     .flash_bytes(24 * 1024)  // ~9 s of audio per node
                     .grid(4, 4);
    for (int e = 0; e < 10; ++e) {
      add_event(*world, {3, 3}, 10.0 + 50.0 * e, 22.0 + 50.0 * e);
    }
    std::vector<std::unique_ptr<DataMule>> mules;
    if (with_mule) {
      for (int visit = 0; visit < 5; ++visit) {
        MuleConfig mc;
        mc.mule_id = static_cast<net::NodeId>(60000 + visit);
        mc.speed_ft_s = 1.0;
        mules.push_back(std::make_unique<DataMule>(
            *world, std::vector<sim::Position>{{-4, 3}, {10, 3}},
            sim::Time::seconds_i(40 + visit * 100), mc));
      }
    }
    world->start();
    for (auto& m : mules) m->start();
    world->run_until(sim::Time::seconds_i(520));
    std::vector<storage::ChunkMeta> collected;
    for (const auto& m : mules) {
      collected.insert(collected.end(), m->collected_metas().begin(),
                       m->collected_metas().end());
    }
    return world->snapshot_with(collected).miss_ratio;
  };
  const double without = build(false);
  const double with = build(true);
  EXPECT_GT(without, 0.4);  // overflow dominates
  EXPECT_LT(with, without - 0.2);
}

}  // namespace
}  // namespace enviromic::core
