#include <gtest/gtest.h>

#include "energy/energy_model.h"

namespace enviromic::energy {
namespace {

using sim::Time;

TEST(Battery, DrainClampsAtZero) {
  Battery b(10.0);
  b.drain(4.0);
  EXPECT_DOUBLE_EQ(b.remaining_joules(), 6.0);
  EXPECT_DOUBLE_EQ(b.consumed_joules(), 4.0);
  b.drain(100.0);
  EXPECT_DOUBLE_EQ(b.remaining_joules(), 0.0);
  EXPECT_TRUE(b.depleted());
}

TEST(Battery, NegativeDrainIgnored) {
  Battery b(10.0);
  b.drain(-5.0);
  EXPECT_DOUBLE_EQ(b.remaining_joules(), 10.0);
}

TEST(EnergyModel, IdleDrainAccruesWithTime) {
  EnergyConfig cfg;
  EnergyModel m(cfg);
  m.advance(Time::seconds_i(1000));
  const double expected =
      1000.0 * (cfg.cpu_idle_w + cfg.radio_listen_w * cfg.listen_duty_cycle);
  EXPECT_NEAR(m.battery().consumed_joules(), expected, 1e-9);
}

TEST(EnergyModel, AdvanceIsMonotonic) {
  EnergyModel m;
  m.advance(Time::seconds_i(10));
  const double after10 = m.battery().consumed_joules();
  m.advance(Time::seconds_i(5));  // going backwards is a no-op
  EXPECT_DOUBLE_EQ(m.battery().consumed_joules(), after10);
}

TEST(EnergyModel, RadioOffReducesBaseDrain) {
  EnergyModel on, off;
  off.set_radio_on(Time::zero(), false);
  on.advance(Time::seconds_i(1000));
  off.advance(Time::seconds_i(1000));
  EXPECT_GT(on.battery().consumed_joules(), off.battery().consumed_joules());
}

TEST(EnergyModel, SamplingAddsDrain) {
  EnergyModel plain, sampling;
  sampling.set_sampling(Time::zero(), true);
  plain.advance(Time::seconds_i(100));
  sampling.advance(Time::seconds_i(100));
  EXPECT_GT(sampling.battery().consumed_joules(),
            plain.battery().consumed_joules());
}

TEST(EnergyModel, AirtimeCharges) {
  EnergyConfig cfg;
  EnergyModel m(cfg);
  m.charge_airtime(2.0, /*is_tx=*/true);
  EXPECT_NEAR(m.battery().consumed_joules(), 2.0 * cfg.radio_tx_w, 1e-12);
  m.charge_airtime(1.0, /*is_tx=*/false);
  EXPECT_NEAR(m.battery().consumed_joules(),
              2.0 * cfg.radio_tx_w + 1.0 * cfg.radio_listen_w, 1e-12);
}

TEST(EnergyModel, FlashWriteCharges) {
  EnergyConfig cfg;
  EnergyModel m(cfg);
  m.charge_flash_write(1000000);
  // consumed == capacity - remaining loses a few ulps at 20 kJ scale.
  EXPECT_NEAR(m.battery().consumed_joules(),
              1e6 * cfg.flash_write_j_per_byte, 1e-9);
}

TEST(EnergyModel, DrainRateMonotonicInRate) {
  EnergyModel m;
  EXPECT_LT(m.drain_rate_at(0.0), m.drain_rate_at(1000.0));
  EXPECT_LT(m.drain_rate_at(1000.0), m.drain_rate_at(10000.0));
}

TEST(EnergyModel, DrainRateSaturatesAtFullAirtime) {
  EnergyConfig cfg;
  EnergyModel m(cfg);
  // Beyond the bitrate the radio cannot be more than 100% busy.
  EXPECT_DOUBLE_EQ(m.drain_rate_at(1e9), m.drain_rate_at(1e12));
}

TEST(EnergyModel, TtlEnergyMatchesPaperFormula) {
  EnergyConfig cfg;
  EnergyModel m(cfg);
  const double rate = 500.0;
  const double expected = cfg.battery_joules / m.drain_rate_at(rate);
  EXPECT_NEAR(m.ttl_energy_seconds(rate), expected, 1e-6);
}

TEST(EnergyModel, TtlEnergyShrinksAsBatteryDrains) {
  EnergyModel m;
  const double before = m.ttl_energy_seconds(100.0);
  m.charge_airtime(1000.0, true);
  EXPECT_LT(m.ttl_energy_seconds(100.0), before);
}

TEST(EnergyModel, MicaZScaleLifetimeIsDays) {
  // Sanity: an idle duty-cycled node should last for days, not hours —
  // "local battery lasts several days" (paper §II-B).
  EnergyConfig cfg;
  EnergyModel m(cfg);
  const double ttl_days = m.ttl_energy_seconds(0.0) / 86400.0;
  EXPECT_GT(ttl_days, 3.0);
  EXPECT_LT(ttl_days, 365.0);
}

}  // namespace
}  // namespace enviromic::energy
