#include <gtest/gtest.h>

#include "net/message.h"

namespace enviromic::net {
namespace {

TEST(EventId, ValidityAndOrdering) {
  EventId invalid;
  EXPECT_FALSE(invalid.valid());
  EventId a{1, 0}, b{1, 1}, c{2, 0};
  EXPECT_TRUE(a.valid());
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (EventId{1, 0}));
  EXPECT_EQ(a.str(), "E1.0");
}

TEST(Message, EveryTypeHasPositiveWireSize) {
  const Message msgs[] = {
      LeaderAnnounce{}, Resign{},        Sensing{},      TaskRequest{},
      TaskConfirm{},    TaskReject{},    PreludeKeep{},  StateBeacon{},
      TransferOffer{},  TransferGrant{}, TransferData{}, TransferAck{},
      TimeSyncBeacon{}, QueryRequest{},  QueryReply{}};
  for (const auto& m : msgs) {
    EXPECT_GT(wire_size(m), 0u) << type_name(m);
    EXPECT_NE(type_name(m), nullptr);
  }
}

TEST(Message, TypeNamesAreDistinct) {
  const Message a = TaskRequest{};
  const Message b = TaskConfirm{};
  EXPECT_STRNE(type_name(a), type_name(b));
}

TEST(Message, TransferDataSizeIncludesPayload) {
  TransferData d;
  d.payload_bytes = 0;
  const auto base = wire_size(Message{d});
  d.payload_bytes = 64;
  EXPECT_EQ(wire_size(Message{d}), base + 64);
}

TEST(Message, TypeIndexMatchesVariantIndex) {
  EXPECT_EQ(type_index(Message{LeaderAnnounce{}}), 0u);
  EXPECT_EQ(type_index(Message{QueryReply{}}), kMessageTypeCount - 1);
}

TEST(Packet, PayloadSumsMessages) {
  Packet p;
  p.src = 1;
  p.messages.push_back(Sensing{});
  p.messages.push_back(StateBeacon{});
  const auto expected =
      wire_size(Message{Sensing{}}) + wire_size(Message{StateBeacon{}});
  EXPECT_EQ(p.payload_bytes(), expected);
  EXPECT_EQ(p.total_bytes(), expected + Packet::kFramingBytes);
}

TEST(Packet, EmptyPacketStillHasFraming) {
  Packet p;
  EXPECT_EQ(p.payload_bytes(), 0u);
  EXPECT_EQ(p.total_bytes(), Packet::kFramingBytes);
}

TEST(Message, TransferFamilyIsContiguousInVariant) {
  // Metrics relies on TRANSFER_OFFER..TRANSFER_ACK being contiguous.
  const auto first = type_index(Message{TransferOffer{}});
  EXPECT_EQ(type_index(Message{TransferGrant{}}), first + 1);
  EXPECT_EQ(type_index(Message{TransferData{}}), first + 2);
  EXPECT_EQ(type_index(Message{TransferAck{}}), first + 3);
}

}  // namespace
}  // namespace enviromic::net
