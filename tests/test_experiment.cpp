// The canned experiment runners: small-scale sanity plus the paper's
// qualitative claims at reduced horizons (full-scale runs live in bench/).
#include <gtest/gtest.h>

#include "enviromic.h"

namespace enviromic::core {
namespace {

TEST(Experiment, MobileRunProducesSeamlessTimeline) {
  MobileRunConfig cfg;
  cfg.seed = 151;
  const auto res = run_mobile(cfg);
  EXPECT_GT(res.recordings.size(), 5u);
  EXPECT_LT(res.miss_ratio, 0.25);
  // Distinct recorders take over as the source moves.
  std::set<net::NodeId> nodes;
  for (const auto& r : res.recordings) nodes.insert(r.node);
  EXPECT_GE(nodes.size(), 3u);
}

TEST(Experiment, MobileMissShrinksWithDta) {
  // The Fig 6 trend, averaged over a few seeds at two extreme settings.
  double small_dta = 0, large_dta = 0;
  const int runs = 10;
  for (int r = 0; r < runs; ++r) {
    MobileRunConfig cfg;
    cfg.seed = 160 + static_cast<std::uint64_t>(r);
    cfg.task_period = sim::Time::seconds(0.5);
    cfg.task_assign_delay = sim::Time::millis(10);
    small_dta += run_mobile(cfg).miss_ratio / runs;
    cfg.task_assign_delay = sim::Time::millis(90);
    large_dta += run_mobile(cfg).miss_ratio / runs;
  }
  EXPECT_GT(small_dta, large_dta);
}

TEST(Experiment, MobilePlateauNearPaperStartupFraction) {
  // At Dta=70ms the miss ratio is dominated by the ~0.7 s election over the
  // 9 s event: ~8% (paper §IV-A).
  double sum = 0;
  const int runs = 12;
  for (int r = 0; r < runs; ++r) {
    MobileRunConfig cfg;
    cfg.seed = 180 + static_cast<std::uint64_t>(r);
    sum += run_mobile(cfg).miss_ratio / runs;
  }
  EXPECT_GT(sum, 0.03);
  EXPECT_LT(sum, 0.16);
}

TEST(Experiment, IndoorShortRunOrdersModes) {
  auto run = [](Mode m, double beta) {
    IndoorRunConfig cfg;
    cfg.mode = m;
    cfg.beta_max = beta;
    cfg.seed = 152;
    cfg.horizon = sim::Time::seconds_i(1200);
    cfg.sample_period = sim::Time::seconds_i(300);
    cfg.flash_scale = 0.12;  // shrink so saturation happens within 20 min
    return run_indoor(cfg);
  };
  const auto baseline = run(Mode::kUncoordinated, 2.0);
  const auto coop = run(Mode::kCooperativeOnly, 2.0);
  const auto full = run(Mode::kFull, 2.0);
  const double m_base = baseline.series.back().miss_ratio;
  const double m_coop = coop.series.back().miss_ratio;
  const double m_full = full.series.back().miss_ratio;
  EXPECT_GT(m_base, m_coop);
  EXPECT_GT(m_coop, m_full);
  // Redundancy: baseline near its 0.75 bound, cooperative far lower.
  EXPECT_GT(baseline.series.back().redundancy_ratio, 0.5);
  EXPECT_LT(coop.series.back().redundancy_ratio, 0.2);
  // Message counts: baseline none; balancing adds transfer traffic.
  EXPECT_EQ(baseline.series.back().total_messages, 0u);
  EXPECT_GT(full.series.back().total_messages,
            coop.series.back().total_messages);
  EXPECT_GT(full.series.back().transfer_messages, 0u);
  EXPECT_EQ(coop.series.back().transfer_messages, 0u);
}

TEST(Experiment, IndoorSeriesIsSampledAtCadence) {
  IndoorRunConfig cfg;
  cfg.seed = 153;
  cfg.horizon = sim::Time::seconds_i(600);
  cfg.sample_period = sim::Time::seconds_i(120);
  const auto res = run_indoor(cfg);
  ASSERT_EQ(res.series.size(), 5u);
  EXPECT_EQ(res.series[0].t, sim::Time::seconds_i(120));
  EXPECT_EQ(res.series[4].t, sim::Time::seconds_i(600));
  EXPECT_EQ(res.positions.size(), 48u);
}

TEST(Experiment, VoiceStitchingResemblesReference) {
  VoiceRunConfig cfg;
  cfg.seed = 154;
  const auto res = run_voice(cfg);
  EXPECT_EQ(res.reference.size(), res.stitched.size());
  EXPECT_GT(res.stitched_coverage, 0.6);
  EXPECT_GT(res.envelope_correlation, 0.35);
}

TEST(Experiment, OutdoorShortRunProducesActivity) {
  OutdoorRunConfig cfg;
  cfg.seed = 155;
  cfg.horizon = sim::Time::seconds_i(900);  // 15 minutes
  cfg.plan.include_spikes = false;
  cfg.nodes = 16;
  const auto res = run_outdoor(cfg);
  EXPECT_EQ(res.positions.size(), 16u);
  EXPECT_EQ(res.recorded_seconds_per_minute.size(), 16u);
  double total = 0;
  for (double v : res.recorded_seconds_per_minute) total += v;
  EXPECT_GT(total, 10.0);
  EXPECT_NE(res.hottest, net::kInvalidNode);
}

TEST(Experiment, PaperNodeParamsMatchPaperDefaults) {
  const auto p = paper_node_params(Mode::kFull, 3.0);
  EXPECT_EQ(p.protocol.mode, Mode::kFull);
  EXPECT_DOUBLE_EQ(p.protocol.beta_max, 3.0);
  EXPECT_EQ(p.protocol.task_period, sim::Time::seconds_i(1));
  EXPECT_EQ(p.protocol.task_assign_delay, sim::Time::millis(70));
  EXPECT_EQ(p.flash.capacity_bytes, 512u * 1024u);
  EXPECT_EQ(p.flash.block_size, 256u);
  EXPECT_DOUBLE_EQ(p.sampler.sample_rate_hz, 2730.0);
}

}  // namespace
}  // namespace enviromic::core
