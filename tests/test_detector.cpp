#include <gtest/gtest.h>

#include <memory>

#include "acoustic/detector.h"
#include "acoustic/mobility.h"
#include "acoustic/waveform.h"
#include "sim/scheduler.h"

namespace enviromic::acoustic {
namespace {

using sim::Position;
using sim::Time;

struct DetectorFixture {
  sim::Scheduler sched;
  SoundField field{0.02};
  Microphone mic{field, {0, 0}};
  int onsets = 0;
  int offsets = 0;

  Detector make(DetectorConfig cfg = {}) {
    Detector d(sched, mic, sim::Rng(55), cfg);
    return d;
  }

  void add_event(double start_s, double end_s, double loudness = 1.0,
                 double range = 5.0) {
    field.add_source(Source(
        static_cast<SourceId>(field.sources().size()),
        std::make_shared<StaticTrajectory>(Position{0, 0}),
        std::make_shared<ConstantWave>(1.0), Time::seconds(start_s),
        Time::seconds(end_s), loudness, range));
  }
};

TEST(Detector, QuietMeansNoEvent) {
  DetectorFixture f;
  auto d = f.make();
  d.set_onset_handler([&] { ++f.onsets; });
  d.start();
  f.sched.run_until(Time::seconds_i(10));
  EXPECT_EQ(f.onsets, 0);
  EXPECT_FALSE(d.event_present());
}

TEST(Detector, DetectsOnsetAndOffset) {
  DetectorFixture f;
  f.add_event(2.0, 6.0);
  auto d = f.make();
  d.set_onset_handler([&] { ++f.onsets; });
  d.set_offset_handler([&] { ++f.offsets; });
  d.start();
  f.sched.run_until(Time::seconds_i(10));
  EXPECT_EQ(f.onsets, 1);
  EXPECT_EQ(f.offsets, 1);
  EXPECT_FALSE(d.event_present());
}

TEST(Detector, OnsetLatencyIsAtMostAFewPolls) {
  DetectorFixture f;
  f.add_event(2.0, 6.0);
  DetectorConfig cfg;
  cfg.detect_probability = 1.0;
  auto d = f.make(cfg);
  Time onset_at;
  d.set_onset_handler([&] { onset_at = f.sched.now(); });
  d.start();
  f.sched.run_until(Time::seconds_i(10));
  EXPECT_GE(onset_at, Time::seconds_i(2));
  EXPECT_LE(onset_at, Time::seconds(2.0) + cfg.poll_interval * 2);
}

TEST(Detector, HysteresisBridgesShortSilence) {
  DetectorFixture f;
  // Two bursts separated by 200 ms — less than the 400 ms silence hold.
  f.add_event(2.0, 3.0);
  f.add_event(3.2, 4.2);
  DetectorConfig cfg;
  cfg.detect_probability = 1.0;
  auto d = f.make(cfg);
  d.set_onset_handler([&] { ++f.onsets; });
  d.set_offset_handler([&] { ++f.offsets; });
  d.start();
  f.sched.run_until(Time::seconds_i(8));
  EXPECT_EQ(f.onsets, 1);  // one fused event
  EXPECT_EQ(f.offsets, 1);
}

TEST(Detector, SeparateEventsGiveSeparateOnsets) {
  DetectorFixture f;
  f.add_event(2.0, 3.0);
  f.add_event(6.0, 7.0);
  DetectorConfig cfg;
  cfg.detect_probability = 1.0;
  auto d = f.make(cfg);
  d.set_onset_handler([&] { ++f.onsets; });
  d.set_offset_handler([&] { ++f.offsets; });
  d.start();
  f.sched.run_until(Time::seconds_i(10));
  EXPECT_EQ(f.onsets, 2);
  EXPECT_EQ(f.offsets, 2);
}

TEST(Detector, BackgroundTracksAmbientWhileQuiet) {
  DetectorFixture f;
  auto d = f.make();
  d.start();
  f.sched.run_until(Time::seconds_i(30));
  EXPECT_NEAR(d.background(), 0.02, 0.01);
}

TEST(Detector, LoudEventDoesNotPoisonBackground) {
  DetectorFixture f;
  f.add_event(2.0, 20.0);  // long loud event
  auto d = f.make();
  d.start();
  f.sched.run_until(Time::seconds_i(19));
  // Background must not have drifted toward the 1.0 signal level.
  EXPECT_LT(d.background(), 0.1);
  EXPECT_TRUE(d.event_present());
}

TEST(Detector, DisabledDetectorStaysSilent) {
  DetectorFixture f;
  f.add_event(1.0, 5.0);
  auto d = f.make();
  d.set_onset_handler([&] { ++f.onsets; });
  d.set_enabled(false);
  d.start();
  f.sched.run_until(Time::seconds_i(8));
  EXPECT_EQ(f.onsets, 0);
}

TEST(Detector, SubThresholdSignalIgnored) {
  DetectorFixture f;
  f.add_event(1.0, 5.0, /*loudness=*/0.03);  // below margin of 0.08
  auto d = f.make();
  d.set_onset_handler([&] { ++f.onsets; });
  d.start();
  f.sched.run_until(Time::seconds_i(8));
  EXPECT_EQ(f.onsets, 0);
}

TEST(Detector, LastSignalReflectsExcessOverBackground) {
  DetectorFixture f;
  f.add_event(1.0, 10.0, 1.0);
  DetectorConfig cfg;
  cfg.detect_probability = 1.0;
  auto d = f.make(cfg);
  d.start();
  f.sched.run_until(Time::seconds_i(5));
  EXPECT_GT(d.last_signal(), 0.8);
}

TEST(Detector, ProbabilisticDetectionEventuallyFires) {
  DetectorFixture f;
  f.add_event(1.0, 10.0);
  DetectorConfig cfg;
  cfg.detect_probability = 0.3;  // unreliable per poll
  auto d = f.make(cfg);
  d.set_onset_handler([&] { ++f.onsets; });
  d.start();
  f.sched.run_until(Time::seconds_i(9));
  EXPECT_GE(f.onsets, 1);
}

}  // namespace
}  // namespace enviromic::acoustic
