// Time synchronization: clock error bounds, flooding, idle back-off.
#include <gtest/gtest.h>

#include <cmath>

#include "world_fixture.h"

namespace enviromic::core {
namespace {

using testing::WorldBuilder;

TEST(TimeSync, RootClockErrorBoundedByDrift) {
  auto world = WorldBuilder{}.mode(Mode::kCooperativeOnly).seed(121).grid(2, 2);
  world->start();
  world->run_until(sim::Time::seconds_i(60));
  // Node 0 is the sync root: its corrected frame *defines* network time, so
  // the only divergence from true simulation time is its crystal drift
  // (<= 30 ppm over 60 s => <= 1.8 ms, plus the initial pin rounding).
  EXPECT_LT(std::abs(world->node(0).clock().error_seconds()), 0.005);
}

TEST(TimeSync, AllNodesConvergeWellUnderChunkDuration) {
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(122)
                   .lossless_radio()
                   .grid(4, 4);
  world->start();
  world->run_until(sim::Time::seconds_i(120));
  for (std::size_t i = 0; i < world->node_count(); ++i) {
    // Recording chunks are 1 s; timestamps must be good to ~100 ms so
    // stitched files line up (paper Fig 8).
    EXPECT_LT(std::abs(world->node(i).clock().error_seconds()), 0.1)
        << "node " << world->node(i).id();
  }
}

TEST(TimeSync, UnsyncedClockHasRealError) {
  // Without sync (uncoordinated mode never starts it), raw offsets persist.
  auto world = WorldBuilder{}.mode(Mode::kUncoordinated).seed(123).grid(4, 4);
  world->start();
  world->run_until(sim::Time::seconds_i(60));
  double worst = 0.0;
  for (std::size_t i = 0; i < world->node_count(); ++i) {
    worst = std::max(worst, std::abs(world->node(i).clock().error_seconds()));
  }
  EXPECT_GT(worst, 0.005);  // some node drew a visible offset
}

TEST(TimeSync, ErrorStaysBoundedOverLongRuns) {
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(124)
                   .lossless_radio()
                   .grid(3, 3);
  world->start();
  for (int minute = 1; minute <= 20; ++minute) {
    world->run_until(sim::Time::seconds_i(60 * minute));
    for (std::size_t i = 0; i < world->node_count(); ++i) {
      EXPECT_LT(std::abs(world->node(i).clock().error_seconds()), 0.1);
    }
  }
}

TEST(TimeSync, BeaconsFloodToMultiHopNodes) {
  // A 10-node line, 3 ft spacing, comm range 4 ft: the far end is ~7 hops
  // from the root and can only sync via rebroadcasts.
  WorldBuilder b;
  b.mode(Mode::kCooperativeOnly).seed(125).lossless_radio();
  auto world = std::make_unique<World>(b.cfg);
  for (int i = 0; i < 10; ++i) world->add_node({3.0 * i, 0.0});
  world->start();
  world->run_until(sim::Time::seconds_i(180));
  auto& far = world->node(9);
  EXPECT_GT(far.timesync().last_seq(), 0u);
  EXPECT_LT(std::abs(far.clock().error_seconds()), 0.2);
}

TEST(TimeSync, IdleBackoffReducesBeaconRate) {
  // Quiet network: after the idle threshold, the root stretches its period.
  WorldBuilder b;
  b.mode(Mode::kCooperativeOnly).seed(126).lossless_radio();
  auto quiet = b.grid(2, 2);
  quiet->start();
  quiet->run_until(sim::Time::seconds_i(1200));
  const auto quiet_beacons = quiet->node(0).timesync().beacons_sent();

  // Busy network: periodic events keep note_activity() fresh.
  auto busy = WorldBuilder{}
                  .mode(Mode::kCooperativeOnly)
                  .seed(126)
                  .lossless_radio()
                  .perfect_detection()
                  .grid(2, 2);
  for (int k = 0; k < 12; ++k) {
    testing::add_event(*busy, {1, 1}, 60.0 + k * 90.0, 65.0 + k * 90.0, 3.0);
  }
  busy->start();
  busy->run_until(sim::Time::seconds_i(1200));
  const auto busy_beacons = busy->node(0).timesync().beacons_sent();
  EXPECT_LT(quiet_beacons, busy_beacons);
}

}  // namespace
}  // namespace enviromic::core
