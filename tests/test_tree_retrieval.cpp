// Spanning-tree retrieval (paper §II-C's first design): flooded queries
// build a tree, replies route up it to the sink, and gap windows are
// re-flooded.
#include <gtest/gtest.h>

#include "world_fixture.h"

namespace enviromic::core {
namespace {

using testing::WorldBuilder;

storage::Chunk chunk_at(Node& n, net::EventId ev, double start_s,
                        double end_s) {
  storage::Chunk c;
  c.meta.key = n.store().next_key(n.id());
  c.meta.bytes = 500;
  c.meta.recorded_by = n.id();
  c.meta.event = ev;
  c.meta.start = sim::Time::seconds(start_s);
  c.meta.end = sim::Time::seconds(end_s);
  return c;
}

std::unique_ptr<World> line_world(std::uint64_t seed, int n,
                                  Mode mode = Mode::kCooperativeOnly) {
  WorldBuilder b;
  b.mode(mode).seed(seed).lossless_radio();
  auto world = std::make_unique<World>(b.cfg);
  for (int i = 0; i < n; ++i) world->add_node({3.0 * i, 0.0});
  return world;
}

TEST(TreeRetrieval, RepliesRouteMultiHopToTheSink) {
  // Node 5 (12 ft away, 4 hops at 4 ft range) holds a chunk; a flooded
  // query from node 1 must bring the descriptor all the way back.
  auto world = line_world(271, 6);
  auto& far = world->node(4);
  far.store().append(chunk_at(far, {far.id(), 1}, 1, 2));
  world->start();
  std::vector<net::QueryReply> replies;
  world->node(0).retrieval().start_query(
      sim::Time::zero(), sim::Time::seconds_i(100), /*hops=*/6,
      [&](const net::QueryReply& r) { replies.push_back(r); });
  world->run_for(sim::Time::seconds_i(10));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].sender, far.id());
  // Intermediate nodes actually relayed.
  std::uint32_t relayed = 0;
  for (std::size_t i = 0; i < world->node_count(); ++i) {
    relayed += world->node(i).retrieval().stats().replies_relayed;
  }
  EXPECT_GE(relayed, 2u);
}

TEST(TreeRetrieval, WholeNetworkDrainsToCornerSink) {
  auto world = line_world(272, 7);
  for (std::size_t i = 1; i < world->node_count(); ++i) {
    auto& n = world->node(i);
    n.store().append(chunk_at(n, {n.id(), 1}, i * 10.0, i * 10.0 + 2.0));
  }
  world->start();
  std::size_t got = 0;
  world->node(0).retrieval().start_query(
      sim::Time::zero(), sim::Time::seconds_i(1000), /*hops=*/8,
      [&](const net::QueryReply&) { ++got; });
  world->run_for(sim::Time::seconds_i(15));
  EXPECT_EQ(got, world->node_count() - 1);
}

TEST(TreeRetrieval, SingleHopMissesWhatTheTreeFinds) {
  // The contrast the paper weighs in §II-C.
  auto run = [](std::uint8_t hops) {
    auto world = line_world(273, 6);
    for (std::size_t i = 1; i < world->node_count(); ++i) {
      auto& n = world->node(i);
      n.store().append(chunk_at(n, {n.id(), 1}, 5, 7));
    }
    world->start();
    std::size_t got = 0;
    world->node(0).retrieval().start_query(
        sim::Time::zero(), sim::Time::seconds_i(1000), hops,
        [&](const net::QueryReply&) { ++got; });
    world->run_for(sim::Time::seconds_i(15));
    return got;
  };
  EXPECT_EQ(run(1), 1u);  // only the adjacent node
  EXPECT_EQ(run(8), 5u);  // everyone
}

TEST(TreeRetrieval, FindGapWindowsFlagsMissingParts) {
  storage::FileIndex idx;
  storage::ChunkMeta a;
  a.event = {1, 0};
  a.key = 1;
  a.start = sim::Time::seconds_i(0);
  a.end = sim::Time::seconds_i(2);
  storage::ChunkMeta b = a;
  b.key = 2;
  b.start = sim::Time::seconds_i(5);
  b.end = sim::Time::seconds_i(6);
  idx.add(a, 10);
  idx.add(b, 11);
  const auto gaps = find_gap_windows(idx);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].first, sim::Time::seconds_i(2));
  EXPECT_EQ(gaps[0].second, sim::Time::seconds_i(5));
}

TEST(TreeRetrieval, GapReQueryRetrievesTheMissingChunk) {
  // First query window misses a later chunk; the sink detects the gap in
  // the reassembled file and re-floods for it (paper: "their IDs are
  // flooded until all parts are retrieved successfully").
  auto world = line_world(274, 5);
  const net::EventId ev{99, 1};
  auto& n2 = world->node(2);
  auto& n3 = world->node(3);
  n2.store().append(chunk_at(n2, ev, 10, 12));
  n2.store().append(chunk_at(n2, ev, 15, 17));
  n3.store().append(chunk_at(n3, ev, 12, 15));  // middle piece elsewhere
  world->start();

  storage::FileIndex fetched;
  auto collect = [&](const net::QueryReply& r) {
    storage::ChunkMeta m;
    m.key = r.chunk_key;
    m.event = r.event;
    m.start = r.start;
    m.end = r.end;
    m.recorded_by = r.recorded_by;
    m.bytes = r.bytes;
    fetched.add(m, r.sender);
  };
  // Round 1: a window that misses the middle chunk's holder? Query only
  // [14, 20): fetches the tail chunk, leaving [12, 15) unknown... then the
  // file summary shows the gap [12, 15) within what we hold.
  world->node(0).retrieval().start_query(sim::Time::seconds_i(9),
                                         sim::Time::seconds_i(12), 8, collect);
  world->run_for(sim::Time::seconds_i(10));
  world->node(0).retrieval().start_query(sim::Time::seconds_i(15),
                                         sim::Time::seconds_i(20), 8, collect);
  world->run_for(sim::Time::seconds_i(10));
  ASSERT_EQ(fetched.chunk_count(), 2u);
  const auto gaps = find_gap_windows(fetched);
  ASSERT_EQ(gaps.size(), 1u);

  // Round 2: re-flood exactly the gap window.
  world->node(0).retrieval().start_query(gaps[0].first, gaps[0].second, 8,
                                         collect);
  world->run_for(sim::Time::seconds_i(10));
  fetched.deduplicate();
  EXPECT_EQ(fetched.chunk_count(), 3u);
  EXPECT_TRUE(find_gap_windows(fetched).empty());
}

TEST(TreeRetrieval, PipelinedDrainStreamsChunksMultiHop) {
  // A pipelined drain hauls chunk *data* (not just descriptors) across the
  // tree: chunks hop the spanning tree over the bulk-transfer pipeline,
  // relayed store-and-forward at intermediate nodes, and land at the sink.
  auto world = line_world(281, 5, Mode::kFull);
  for (std::size_t i = 1; i < world->node_count(); ++i) {
    auto& n = world->node(i);
    n.store().append(chunk_at(n, {n.id(), 1}, i * 10.0, i * 10.0 + 2.0));
  }
  world->start();
  auto& sink = world->node(0);
  DrainOptions opts;
  opts.hops = 8;
  const auto id = sink.retrieval().start_drain(opts);
  world->run_for(sim::Time::seconds_i(60));
  EXPECT_EQ(sink.retrieval().collected_keys().size(), world->node_count() - 1);
  // Every field store is empty — the data moved, it wasn't copied.
  for (std::size_t i = 1; i < world->node_count(); ++i) {
    EXPECT_EQ(world->node(i).store().chunk_count(), 0u) << i;
  }
  // Intermediate nodes actually relayed chunk data upstream.
  std::uint32_t relayed = 0;
  for (std::size_t i = 0; i < world->node_count(); ++i) {
    relayed += world->node(i).retrieval().stats().chunks_relayed;
  }
  EXPECT_GE(relayed, 2u);
  // The drain wound itself down after the field ran dry.
  EXPECT_FALSE(sink.retrieval().drain_active(id));
}

TEST(TreeRetrieval, DrainSelectorFiltersBySource) {
  // /chunks/source/<id>: only the named recorder's chunks leave the field.
  auto world = line_world(282, 4, Mode::kFull);
  auto& n1 = world->node(1);
  auto& n2 = world->node(2);
  n1.store().append(chunk_at(n1, {n1.id(), 1}, 10, 12));
  n2.store().append(chunk_at(n2, {n2.id(), 1}, 20, 22));
  world->start();
  auto& sink = world->node(0);
  DrainOptions opts;
  opts.hops = 8;
  opts.selector = ResourceSelector::by_source(n2.id());
  sink.retrieval().start_drain(opts);
  world->run_for(sim::Time::seconds_i(30));
  ASSERT_EQ(sink.retrieval().collected().size(), 1u);
  EXPECT_EQ(sink.retrieval().collected()[0].meta.recorded_by, n2.id());
  EXPECT_EQ(n1.store().chunk_count(), 1u);  // unselected chunk stays put
  EXPECT_EQ(n2.store().chunk_count(), 0u);
}

TEST(TreeRetrieval, QueryStormCannotEvictLiveDrainTreeState) {
  // Regression: the seed's soft-state cap evicted by lowest map key, so a
  // storm of >cap queries threw away a live drain's tree parent and the
  // drain's replies fell off the tree. Eviction now protects entries with
  // an active serve session and ages the rest by TTL.
  auto world = line_world(283, 4, Mode::kFull);
  for (std::size_t i = 1; i < world->node_count(); ++i) {
    auto& n = world->node(i);
    for (int c = 0; c < 4; ++c) {
      n.store().append(
          chunk_at(n, {n.id(), 1}, i * 100.0 + c * 10.0, i * 100.0 + c * 10.0 + 2.0));
    }
  }
  world->start();
  auto& sink = world->node(0);
  DrainOptions opts;
  opts.hops = 8;
  sink.retrieval().start_drain(opts);
  // Let the drain build its tree and start streaming...
  world->run_for(sim::Time::millis(500));
  // ...then blast every relay with far more flooded queries than the
  // soft-state cap holds, directly into the handler (a hostile or merely
  // busy network — no radio round-trips, maximum eviction pressure).
  for (std::size_t i = 1; i < world->node_count(); ++i) {
    auto& n = world->node(i);
    net::QueryRequest q;
    q.sink = 999;
    q.hops_left = 1;
    q.from = sim::Time::zero();
    q.to = sim::Time::max();
    for (std::uint32_t id = 1; id <= 4 * n.cfg().retrieval_max_queries + 50;
         ++id) {
      q.query_id = id;
      n.retrieval().handle(q, 999);
    }
  }
  world->run_for(sim::Time::seconds_i(60));
  // The live drain still routed everything home.
  EXPECT_EQ(sink.retrieval().collected_keys().size(),
            (world->node_count() - 1) * 4);
}

TEST(TreeRetrieval, MultiSinkChaosDrainIsAccountedAndDeterministic) {
  // Two corner sinks drain a faulty grid. The run must keep the chaos
  // invariants, account every eligible chunk as collected or missed, keep
  // physical double-uploads within the replicas aborted transfers created,
  // and reproduce bit-identically on the same seed with tracing on or off.
  core::ChaosRunConfig cfg;
  cfg.seed = 21;
  cfg.horizon = sim::Time::seconds_i(240);
  cfg.faults.crash_probability = 0.3;
  cfg.faults.downtime_mean = sim::Time::seconds_i(45);
  cfg.flight_recorder = false;
  cfg.payload_census = false;
  cfg.drain_sinks = 2;
  cfg.drain_hops = 10;
  const auto r = core::run_chaos(cfg);
  EXPECT_TRUE(r.invariants_hold());
  EXPECT_EQ(r.retrieval_sinks, 2u);
  EXPECT_GT(r.retrieval_eligible, 0u);
  EXPECT_GT(r.retrieval_collected, 0u);
  // Misses are accounted, not silently dropped.
  EXPECT_GE(r.retrieval_miss_ratio, 0.0);
  EXPECT_LE(r.retrieval_miss_ratio, 1.0);
  // A chunk lands at two sinks only via distinct physical replicas (one
  // node can't double-upload); replicas come from aborted transfers.
  EXPECT_LE(r.retrieval_double_uploads, r.duplicate_risks_counted);

  const auto r2 = core::run_chaos(cfg);
  EXPECT_EQ(r.retrieval_collected, r2.retrieval_collected);
  EXPECT_EQ(r.retrieval_eligible, r2.retrieval_eligible);
  EXPECT_EQ(r.retrieval_double_uploads, r2.retrieval_double_uploads);
  EXPECT_EQ(r.retrieval_drain_span, r2.retrieval_drain_span);
  EXPECT_EQ(r.final_snapshot.total_messages, r2.final_snapshot.total_messages);
  EXPECT_EQ(r.executed_events, r2.executed_events);

  // Tracing must observe, never steer: the traced run is bit-identical.
  sim::Trace::instance().enable(4096);
  const auto r3 = core::run_chaos(cfg);
  sim::Trace::instance().disable();
  sim::Trace::instance().clear();
  EXPECT_EQ(r.retrieval_collected, r3.retrieval_collected);
  EXPECT_EQ(r.retrieval_drain_span, r3.retrieval_drain_span);
  EXPECT_EQ(r.final_snapshot.total_messages, r3.final_snapshot.total_messages);
  EXPECT_EQ(r.executed_events, r3.executed_events);
}

}  // namespace
}  // namespace enviromic::core
