// Spanning-tree retrieval (paper §II-C's first design): flooded queries
// build a tree, replies route up it to the sink, and gap windows are
// re-flooded.
#include <gtest/gtest.h>

#include "world_fixture.h"

namespace enviromic::core {
namespace {

using testing::WorldBuilder;

storage::Chunk chunk_at(Node& n, net::EventId ev, double start_s,
                        double end_s) {
  storage::Chunk c;
  c.meta.key = n.store().next_key(n.id());
  c.meta.bytes = 500;
  c.meta.recorded_by = n.id();
  c.meta.event = ev;
  c.meta.start = sim::Time::seconds(start_s);
  c.meta.end = sim::Time::seconds(end_s);
  return c;
}

std::unique_ptr<World> line_world(std::uint64_t seed, int n) {
  WorldBuilder b;
  b.mode(Mode::kCooperativeOnly).seed(seed).lossless_radio();
  auto world = std::make_unique<World>(b.cfg);
  for (int i = 0; i < n; ++i) world->add_node({3.0 * i, 0.0});
  return world;
}

TEST(TreeRetrieval, RepliesRouteMultiHopToTheSink) {
  // Node 5 (12 ft away, 4 hops at 4 ft range) holds a chunk; a flooded
  // query from node 1 must bring the descriptor all the way back.
  auto world = line_world(271, 6);
  auto& far = world->node(4);
  far.store().append(chunk_at(far, {far.id(), 1}, 1, 2));
  world->start();
  std::vector<net::QueryReply> replies;
  world->node(0).retrieval().start_query(
      sim::Time::zero(), sim::Time::seconds_i(100), /*hops=*/6,
      [&](const net::QueryReply& r) { replies.push_back(r); });
  world->run_for(sim::Time::seconds_i(10));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].sender, far.id());
  // Intermediate nodes actually relayed.
  std::uint32_t relayed = 0;
  for (std::size_t i = 0; i < world->node_count(); ++i) {
    relayed += world->node(i).retrieval().stats().replies_relayed;
  }
  EXPECT_GE(relayed, 2u);
}

TEST(TreeRetrieval, WholeNetworkDrainsToCornerSink) {
  auto world = line_world(272, 7);
  for (std::size_t i = 1; i < world->node_count(); ++i) {
    auto& n = world->node(i);
    n.store().append(chunk_at(n, {n.id(), 1}, i * 10.0, i * 10.0 + 2.0));
  }
  world->start();
  std::size_t got = 0;
  world->node(0).retrieval().start_query(
      sim::Time::zero(), sim::Time::seconds_i(1000), /*hops=*/8,
      [&](const net::QueryReply&) { ++got; });
  world->run_for(sim::Time::seconds_i(15));
  EXPECT_EQ(got, world->node_count() - 1);
}

TEST(TreeRetrieval, SingleHopMissesWhatTheTreeFinds) {
  // The contrast the paper weighs in §II-C.
  auto run = [](std::uint8_t hops) {
    auto world = line_world(273, 6);
    for (std::size_t i = 1; i < world->node_count(); ++i) {
      auto& n = world->node(i);
      n.store().append(chunk_at(n, {n.id(), 1}, 5, 7));
    }
    world->start();
    std::size_t got = 0;
    world->node(0).retrieval().start_query(
        sim::Time::zero(), sim::Time::seconds_i(1000), hops,
        [&](const net::QueryReply&) { ++got; });
    world->run_for(sim::Time::seconds_i(15));
    return got;
  };
  EXPECT_EQ(run(1), 1u);  // only the adjacent node
  EXPECT_EQ(run(8), 5u);  // everyone
}

TEST(TreeRetrieval, FindGapWindowsFlagsMissingParts) {
  storage::FileIndex idx;
  storage::ChunkMeta a;
  a.event = {1, 0};
  a.key = 1;
  a.start = sim::Time::seconds_i(0);
  a.end = sim::Time::seconds_i(2);
  storage::ChunkMeta b = a;
  b.key = 2;
  b.start = sim::Time::seconds_i(5);
  b.end = sim::Time::seconds_i(6);
  idx.add(a, 10);
  idx.add(b, 11);
  const auto gaps = find_gap_windows(idx);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].first, sim::Time::seconds_i(2));
  EXPECT_EQ(gaps[0].second, sim::Time::seconds_i(5));
}

TEST(TreeRetrieval, GapReQueryRetrievesTheMissingChunk) {
  // First query window misses a later chunk; the sink detects the gap in
  // the reassembled file and re-floods for it (paper: "their IDs are
  // flooded until all parts are retrieved successfully").
  auto world = line_world(274, 5);
  const net::EventId ev{99, 1};
  auto& n2 = world->node(2);
  auto& n3 = world->node(3);
  n2.store().append(chunk_at(n2, ev, 10, 12));
  n2.store().append(chunk_at(n2, ev, 15, 17));
  n3.store().append(chunk_at(n3, ev, 12, 15));  // middle piece elsewhere
  world->start();

  storage::FileIndex fetched;
  auto collect = [&](const net::QueryReply& r) {
    storage::ChunkMeta m;
    m.key = r.chunk_key;
    m.event = r.event;
    m.start = r.start;
    m.end = r.end;
    m.recorded_by = r.recorded_by;
    m.bytes = r.bytes;
    fetched.add(m, r.sender);
  };
  // Round 1: a window that misses the middle chunk's holder? Query only
  // [14, 20): fetches the tail chunk, leaving [12, 15) unknown... then the
  // file summary shows the gap [12, 15) within what we hold.
  world->node(0).retrieval().start_query(sim::Time::seconds_i(9),
                                         sim::Time::seconds_i(12), 8, collect);
  world->run_for(sim::Time::seconds_i(10));
  world->node(0).retrieval().start_query(sim::Time::seconds_i(15),
                                         sim::Time::seconds_i(20), 8, collect);
  world->run_for(sim::Time::seconds_i(10));
  ASSERT_EQ(fetched.chunk_count(), 2u);
  const auto gaps = find_gap_windows(fetched);
  ASSERT_EQ(gaps.size(), 1u);

  // Round 2: re-flood exactly the gap window.
  world->node(0).retrieval().start_query(gaps[0].first, gaps[0].second, 8,
                                         collect);
  world->run_for(sim::Time::seconds_i(10));
  fetched.deduplicate();
  EXPECT_EQ(fetched.chunk_count(), 3u);
  EXPECT_TRUE(find_gap_windows(fetched).empty());
}

}  // namespace
}  // namespace enviromic::core
