#include <gtest/gtest.h>

#include "sim/time.h"

namespace enviromic::sim {
namespace {

TEST(Time, DefaultIsZero) {
  EXPECT_EQ(Time().raw_ticks(), 0);
  EXPECT_TRUE(Time().is_zero());
  EXPECT_FALSE(Time().is_negative());
}

TEST(Time, UnitConversionsAreExact) {
  EXPECT_EQ(Time::jiffies(1).raw_ticks(), 1000);
  EXPECT_EQ(Time::millis(1).raw_ticks(), 32768);
  EXPECT_EQ(Time::seconds_i(1).raw_ticks(), 32768000);
  EXPECT_EQ(Time::seconds_i(1), Time::millis(1000));
  EXPECT_EQ(Time::millis(1000), Time::jiffies(32768));
}

TEST(Time, JiffyIsExactlyOne32768thOfASecond) {
  EXPECT_EQ(Time::jiffies(32768), Time::seconds_i(1));
  EXPECT_DOUBLE_EQ(Time::jiffies(1).to_seconds(), 1.0 / 32768.0);
}

TEST(Time, FractionalSecondsRoundToNearestTick) {
  EXPECT_EQ(Time::seconds(0.5).raw_ticks(), 16384000);
  EXPECT_EQ(Time::seconds(1.0), Time::seconds_i(1));
  EXPECT_EQ(Time::seconds(-0.5).raw_ticks(), -16384000);
}

TEST(Time, ToConversions) {
  const Time t = Time::millis(1500);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(t.to_millis(), 1500.0);
  EXPECT_DOUBLE_EQ(Time::jiffies(10).to_jiffies(), 10.0);
}

TEST(Time, Arithmetic) {
  const Time a = Time::seconds_i(2);
  const Time b = Time::millis(500);
  EXPECT_EQ((a + b).to_millis(), 2500.0);
  EXPECT_EQ((a - b).to_millis(), 1500.0);
  Time c = a;
  c += b;
  EXPECT_EQ(c, Time::millis(2500));
  c -= a;
  EXPECT_EQ(c, b);
  EXPECT_EQ((b * 4), a);
}

TEST(Time, DivisionAndModulo) {
  EXPECT_EQ(Time::seconds_i(10) / Time::seconds_i(3), 3);
  EXPECT_EQ(Time::seconds_i(10) % Time::seconds_i(3), Time::seconds_i(1));
}

TEST(Time, ScaledRounds) {
  EXPECT_EQ(Time::seconds_i(2).scaled(0.5), Time::seconds_i(1));
  EXPECT_EQ(Time::millis(10).scaled(1.5), Time::millis(15));
  EXPECT_EQ(Time::ticks(3).scaled(0.5).raw_ticks(), 2);  // round half to even? llround: 1.5 -> 2
}

TEST(Time, Ordering) {
  EXPECT_LT(Time::millis(1), Time::millis(2));
  EXPECT_GT(Time::seconds_i(1), Time::millis(999));
  EXPECT_LE(Time::zero(), Time::zero());
  EXPECT_TRUE(Time::millis(-5).is_negative());
}

TEST(Time, MaxIsLargerThanAnyPracticalTime) {
  EXPECT_GT(Time::max(), Time::seconds_i(100LL * 365 * 24 * 3600));
}

TEST(Time, StringRendering) {
  EXPECT_EQ(Time::millis(1500).str(), "1.500000s");
  EXPECT_EQ(Time::zero().str(), "0.000000s");
}

TEST(Time, NegativeDurationsBehave) {
  const Time d = Time::millis(100) - Time::millis(250);
  EXPECT_TRUE(d.is_negative());
  EXPECT_EQ(d + Time::millis(250), Time::millis(100));
}

}  // namespace
}  // namespace enviromic::sim
