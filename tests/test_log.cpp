#include <gtest/gtest.h>

#include "sim/log.h"

namespace enviromic::sim {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultLevelIsOff) {
  // Other tests must not leak log output; the global default is kOff.
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST(Log, SetAndGetLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST(Log, StreamBelowThresholdDoesNotCrash) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  LogStream(LogLevel::kError, Time::seconds_i(1), "test") << "hidden " << 42;
  SUCCEED();
}

TEST(Log, OrderingOfLevels) {
  EXPECT_LT(static_cast<int>(LogLevel::kOff), static_cast<int>(LogLevel::kError));
  EXPECT_LT(static_cast<int>(LogLevel::kError), static_cast<int>(LogLevel::kWarn));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo), static_cast<int>(LogLevel::kTrace));
}

}  // namespace
}  // namespace enviromic::sim
