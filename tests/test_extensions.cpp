// Extensions beyond the paper's evaluated configuration: controlled
// recording redundancy (footnote 1), node-failure injection (§VI), and
// chunk compression (§V).
#include <gtest/gtest.h>

#include <set>

#include "world_fixture.h"

namespace enviromic::core {
namespace {

using testing::WorldBuilder;
using testing::add_event;
using testing::sum_nodes;

TEST(Replicas, TwoCopiesRecordedPerRound) {
  WorldBuilder b;
  b.mode(Mode::kCooperativeOnly).seed(201).perfect_detection().lossless_radio();
  b.cfg.node_defaults.protocol.recording_replicas = 2;
  auto world = b.grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 20.0);
  world->start();
  world->run_until(sim::Time::seconds_i(25));
  const auto snap = world->snapshot();
  // Stored recording time approaches 2x the unique coverage (replicas are
  // best-effort: a busy or mid-recording member occasionally leaves a round
  // single-copy).
  const double stored = snap.stored_total.to_seconds();
  const double unique = snap.covered_unique.to_seconds();
  EXPECT_GT(stored / unique, 1.4);
  EXPECT_LT(stored / unique, 2.1);
  EXPECT_NEAR(snap.redundancy_ratio, 0.35, 0.15);
  const auto replicas = sum_nodes(
      *world, [](Node& n) { return n.tasking().stats().replicas_assigned; });
  EXPECT_GE(replicas, 10u);
}

TEST(Replicas, SingleCopyByDefault) {
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(202)
                   .perfect_detection()
                   .lossless_radio()
                   .grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 20.0);
  world->start();
  world->run_until(sim::Time::seconds_i(25));
  EXPECT_EQ(sum_nodes(*world, [](Node& n) {
              return n.tasking().stats().replicas_assigned;
            }),
            0u);
}

TEST(Replicas, RedundancySurvivesLostMote) {
  // With replicas=2, losing one mote (and its data) after the event still
  // leaves the event covered — the paper's motivation for controlled
  // redundancy.
  double covered_single = 0, covered_double = 0;
  for (int replicas = 1; replicas <= 2; ++replicas) {
    WorldBuilder b;
    b.mode(Mode::kCooperativeOnly)
        .seed(203)
        .perfect_detection()
        .lossless_radio();
    b.cfg.node_defaults.protocol.recording_replicas = replicas;
    auto world = b.grid(4, 4);
    add_event(*world, {3, 3}, 5.0, 20.0);
    world->start();
    world->run_until(sim::Time::seconds_i(25));
    // Lose the mote that stored the most data.
    net::NodeId worst = net::kInvalidNode;
    std::uint64_t most = 0;
    for (std::size_t i = 0; i < world->node_count(); ++i) {
      auto& n = world->node(i);
      if (n.store().used_bytes() > most) {
        most = n.store().used_bytes();
        worst = n.id();
      }
    }
    world->by_id(worst)->fail(/*lose_data=*/true);
    const double covered = world->snapshot().covered_unique.to_seconds();
    (replicas == 1 ? covered_single : covered_double) = covered;
  }
  EXPECT_GT(covered_double, covered_single + 2.0);
}

TEST(Failure, DefunctMoteKeepsRecoverableData) {
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(204)
                   .perfect_detection()
                   .lossless_radio()
                   .grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 15.0);
  world->start();
  world->run_until(sim::Time::seconds_i(12));
  auto& victim = world->node(5);
  const auto before = victim.store().chunk_count();
  victim.fail(/*lose_data=*/false);
  world->run_until(sim::Time::seconds_i(20));
  EXPECT_TRUE(victim.failed());
  EXPECT_FALSE(victim.data_lost());
  EXPECT_EQ(victim.store().chunk_count(), before);
  EXPECT_FALSE(victim.radio().is_on());
}

TEST(Failure, GroupSurvivesLeaderDeath) {
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(205)
                   .perfect_detection()
                   .lossless_radio()
                   .grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 40.0);
  world->start();
  world->run_until(sim::Time::seconds_i(10));
  // Kill the current leader mid-event.
  net::NodeId leader = net::kInvalidNode;
  for (std::size_t i = 0; i < world->node_count(); ++i) {
    if (world->node(i).group().is_leader()) leader = world->node(i).id();
  }
  ASSERT_NE(leader, net::kInvalidNode);
  world->by_id(leader)->fail();
  world->run_until(sim::Time::seconds_i(45));
  // The watchdog re-elects and recording continues: total gap stays small
  // relative to the event.
  EXPECT_LT(world->snapshot().miss_ratio, 0.35);
  const auto wd = sum_nodes(*world, [](Node& n) {
    return n.group().stats().watchdog_reelections;
  });
  const auto elections = sum_nodes(
      *world, [](Node& n) { return n.group().stats().elections_won; });
  EXPECT_GE(wd + elections, 2u);
}

TEST(Failure, LostMoteDataExcludedFromRetrieval) {
  auto world = WorldBuilder{}
                   .mode(Mode::kUncoordinated)
                   .seed(206)
                   .perfect_detection()
                   .grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 15.0);
  world->start();
  world->run_until(sim::Time::seconds_i(20));
  const auto chunks_before = world->drain_all(false).chunk_count();
  world->node(5).fail(/*lose_data=*/true);
  const auto chunks_after = world->drain_all(false).chunk_count();
  EXPECT_LT(chunks_after, chunks_before);
}

TEST(Failure, ScheduledFailureFires) {
  auto world =
      WorldBuilder{}.mode(Mode::kCooperativeOnly).seed(207).grid(2, 2);
  world->fail_node_at(3, sim::Time::seconds_i(10));
  world->start();
  world->run_until(sim::Time::seconds_i(9));
  EXPECT_FALSE(world->by_id(3)->failed());
  world->run_until(sim::Time::seconds_i(11));
  EXPECT_TRUE(world->by_id(3)->failed());
}

TEST(Compression, SilentIntervalsShrinkStoredBytes) {
  // A voice-like event with true pauses: the silent stretches (ADC pinned
  // at 128 when ambient noise is negligible) collapse under both codecs.
  auto run = [](storage::CodecKind codec) {
    WorldBuilder b;
    b.mode(Mode::kCooperativeOnly).seed(208).perfect_detection().lossless_radio();
    b.cfg.background_level = 0.001;  // still forest night
    b.cfg.node_defaults.flash.store_payloads = true;
    b.cfg.node_defaults.protocol.chunk_codec = codec;
    auto world = b.grid(4, 4);
    world->add_source(
        std::make_shared<acoustic::StaticTrajectory>(sim::Position{3, 3}),
        std::make_shared<acoustic::VoiceWave>(99), sim::Time::seconds_i(5),
        sim::Time::seconds_i(15), 1.0, 2.0);
    world->start();
    world->run_until(sim::Time::seconds_i(20));
    return testing::sum_nodes(*world, [](Node& n) {
      return n.store().used_payload_bytes();
    });
  };
  const auto raw = run(storage::CodecKind::kNone);
  const auto rle = run(storage::CodecKind::kRle);
  const auto delta = run(storage::CodecKind::kDelta);
  ASSERT_GT(raw, 0u);
  EXPECT_LT(static_cast<double>(delta), 0.95 * static_cast<double>(raw));
  EXPECT_LT(static_cast<double>(rle), 0.98 * static_cast<double>(raw));
}

TEST(Compression, PayloadStillDecodable) {
  WorldBuilder b;
  b.mode(Mode::kCooperativeOnly).seed(209).perfect_detection().lossless_radio();
  b.cfg.node_defaults.flash.store_payloads = true;
  b.cfg.node_defaults.protocol.chunk_codec = storage::CodecKind::kDelta;
  auto world = b.grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 12.0);
  world->start();
  world->run_until(sim::Time::seconds_i(16));
  int decoded_chunks = 0;
  for (std::size_t i = 0; i < world->node_count(); ++i) {
    auto& n = world->node(i);
    n.store().for_each([&](const storage::ChunkMeta& m) {
      const auto blob = n.store().read_payload(m.key);
      if (blob.empty()) return;
      const auto samples = storage::decode(blob);
      // ~1 s of 2730 Hz audio per task chunk.
      EXPECT_NEAR(static_cast<double>(samples.size()), 2730.0, 60.0);
      ++decoded_chunks;
    });
  }
  EXPECT_GT(decoded_chunks, 3);
}

}  // namespace
}  // namespace enviromic::core
