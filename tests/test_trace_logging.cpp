// Protocol trace logging: the debug/trace statements in group, tasking,
// balancing and bulk transfer must be exercisable without disturbing the
// protocol (logging is observational only).
#include <gtest/gtest.h>

#include "world_fixture.h"

namespace enviromic::core {
namespace {

using testing::WorldBuilder;
using testing::add_event;

class TraceLoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { sim::set_log_level(sim::LogLevel::kOff); }
};

TEST_F(TraceLoggingTest, RunIsIdenticalWithAndWithoutLogging) {
  auto run = [](sim::LogLevel level) {
    sim::set_log_level(level);
    auto world = WorldBuilder{}
                     .mode(Mode::kFull, 2.0)
                     .seed(901)
                     .flash_bytes(32 * 1024)
                     .grid(4, 4);
    add_event(*world, {3, 3}, 5.0, 25.0);
    world->start();
    world->run_until(sim::Time::seconds_i(120));
    const auto snap = world->snapshot();
    return std::make_tuple(snap.miss_ratio, snap.total_messages,
                           world->sched().executed());
  };
  // Route trace output away from the test's stderr noise budget: the
  // logger writes to stderr, which gtest tolerates; correctness is that the
  // simulation outcome is bit-identical.
  const auto quiet = run(sim::LogLevel::kOff);
  const auto traced = run(sim::LogLevel::kTrace);
  EXPECT_EQ(quiet, traced);
}

TEST_F(TraceLoggingTest, LeaderElectionEmitsAtDebug) {
  // Smoke: running with kDebug must not crash while elections, hand-offs,
  // and balancing all fire.
  sim::set_log_level(sim::LogLevel::kDebug);
  auto world = WorldBuilder{}
                   .mode(Mode::kFull, 2.0)
                   .seed(902)
                   .perfect_detection()
                   .grid(4, 4);
  add_event(*world, {3, 3}, 2.0, 8.0);
  world->start();
  world->run_until(sim::Time::seconds_i(12));
  SUCCEED();
}

}  // namespace
}  // namespace enviromic::core
