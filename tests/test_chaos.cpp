// Chaos soak: the indoor workload under randomized crashes, reboots,
// brownouts, clock steps, and a bursty asymmetric channel. After the storm
// plus a grace period, the end state must satisfy the fault model's
// promises: every surviving node's store survives a checkpoint/recover
// round trip, physical collection retrieves every distinct live chunk
// exactly once, no transfer session is stuck, and the fault counters add
// up.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/experiment.h"
#include "sim/trace.h"
#include "world_fixture.h"

namespace enviromic::core {
namespace {

ChaosRunConfig storm(std::uint64_t seed) {
  ChaosRunConfig cfg;
  cfg.seed = seed;
  cfg.horizon = sim::Time::seconds_i(900);
  cfg.faults.crash_probability = 0.5;
  cfg.faults.downtime_mean = sim::Time::seconds_i(45);
  cfg.faults.brownout_probability = 0.3;
  cfg.faults.clock_step_probability = 0.3;
  cfg.burst.enabled = true;
  cfg.link_asymmetry_max = 0.2;
  return cfg;
}

class ChaosSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSoak, InvariantsHoldAfterStorm) {
  const auto res = run_chaos(storm(GetParam()));
  const auto& f = res.final_snapshot.faults;

  // The storm actually happened.
  EXPECT_GT(f.crashes, 0u);
  EXPECT_GT(f.reboots, 0u);
  EXPECT_GT(res.live_chunks, 0u);

  EXPECT_TRUE(res.stores_recoverable);
  EXPECT_TRUE(res.retrieval_exact_once);
  EXPECT_TRUE(res.counters_consistent);
  EXPECT_EQ(res.stuck_tx_sessions, 0u);
  EXPECT_EQ(res.stuck_rx_sessions, 0u);
  EXPECT_EQ(f.recovery_mismatches, 0u);
  EXPECT_TRUE(res.invariants_hold());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoak,
                         ::testing::Values(1ull, 2ull, 3ull, 9ull, 21ull));

TEST(Chaos, PermanentFailuresLoseOnlyTheLostData) {
  ChaosRunConfig cfg = storm(5);
  cfg.faults.permanent_fraction = 0.4;
  cfg.faults.lose_data_fraction = 0.5;
  const auto res = run_chaos(cfg);
  EXPECT_TRUE(res.invariants_hold());
  EXPECT_GT(res.nodes_lost, 0u);
  // Defunct motes are excluded from the crash==reboot accounting.
  EXPECT_EQ(res.final_snapshot.faults.permanent_failures, res.nodes_lost);
}

TEST(Chaos, BusyMemberEligibleExactlyAtTaskEnd) {
  // The busy_until watermark boundary: strictly in the future means
  // recording (excluded from assignment); exactly `now` means the task ends
  // this instant and the member is eligible again. The old `<= now is still
  // busy` comparison skipped an eligible recorder exactly at task end — the
  // moment the seamless-handover round actually queries it.
  auto world = testing::WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(63)
                   .lossless_radio()
                   .grid(2, 2);
  world->start();
  auto& n = world->node(0);
  net::Sensing s;
  s.sender = 90;
  s.ttl_seconds = 100.0;
  n.group().handle(s);  // fresh heartbeat at t=0
  const auto task_end = sim::Time::seconds(1.0);
  n.group().note_recorder_busy(90, task_end);

  world->run_until(task_end - sim::Time::ticks(1));
  EXPECT_TRUE(n.group().fresh_members().empty());

  world->run_until(task_end);  // busy_until == now: task ends exactly now
  const auto members = n.group().fresh_members();
  ASSERT_EQ(members.size(), 1u);
  EXPECT_EQ(members.at(0).first, net::NodeId{90});
}

TEST(Chaos, MigrationByteExactUnderBurstLossAndCrashes) {
  // End-to-end migration audit: Gilbert–Elliott burst loss + crash/reboot
  // with materialized payloads. Every collectable copy of every chunk must
  // be byte-exact (windowed reassembly never scrambles offsets), chunk-key
  // replication must stay within the transfer layer's counted
  // duplicate_risks, and partial incoming sessions must be swept into
  // rx_expired rather than leak.
  ChaosRunConfig cfg = storm(17);
  cfg.horizon = sim::Time::seconds_i(600);
  cfg.store_payloads = true;
  const auto res = run_chaos(cfg);

  EXPECT_GT(res.final_snapshot.faults.crashes, 0u);
  EXPECT_GT(res.live_chunks, 0u);
  // The balancer actually migrated data through the windowed pipeline.
  EXPECT_GT(res.final_snapshot.transfer_max_in_flight, 1u);

  EXPECT_TRUE(res.payloads_intact);
  EXPECT_LE(res.duplicate_copies, res.duplicate_risks_counted);
  EXPECT_TRUE(res.duplicates_within_risk);
  // rx_expired accounting is clean: expired partials were discarded, so no
  // receiver still holds a stuck half-chunk.
  EXPECT_EQ(res.stuck_rx_sessions, 0u);
  EXPECT_EQ(res.stuck_tx_sessions, 0u);
  EXPECT_TRUE(res.invariants_hold());
}

TEST(Chaos, MigrationInvariantsHoldAtStopAndWaitWindow) {
  // The same audit with the window pinned to 1 — the stop-and-wait
  // degenerate shares every safety property with the pipelined default.
  ChaosRunConfig cfg = storm(18);
  cfg.horizon = sim::Time::seconds_i(450);
  cfg.store_payloads = true;
  cfg.transfer_window_frags = 1;
  const auto res = run_chaos(cfg);
  EXPECT_GT(res.live_chunks, 0u);
  EXPECT_TRUE(res.payloads_intact);
  EXPECT_TRUE(res.duplicates_within_risk);
  EXPECT_TRUE(res.invariants_hold());
}

TEST(Chaos, FlightRecorderDumpsTraceTailOnInvariantFailure) {
  // Force an invariant violation — a live-event bound of zero can never hold
  // on a running network — and check the flight recorder's post-mortem: the
  // trace ring tail lands on stderr and in the requested file, and the run
  // honestly reports the violation.
  ChaosRunConfig cfg = storm(21);
  cfg.horizon = sim::Time::seconds_i(300);
  cfg.live_events_per_node_bound = 0;
  const std::string dump_path =
      ::testing::TempDir() + "flight_recorder_dump.txt";
  cfg.flight_recorder_path = dump_path;
  cfg.flight_recorder_dump = 32;

  ::testing::internal::CaptureStderr();
  const auto res = run_chaos(cfg);
  const std::string err = ::testing::internal::GetCapturedStderr();

  EXPECT_FALSE(res.invariants_hold());
  EXPECT_NE(err.find("flight recorder tail"), std::string::npos);
  EXPECT_NE(err.find("[t="), std::string::npos);  // dump_tail record lines

  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good());
  std::stringstream file;
  file << in.rdbuf();
  EXPECT_NE(file.str().find("[t="), std::string::npos);
  std::size_t lines = 0;
  for (char c : file.str())
    if (c == '\n') ++lines;
  EXPECT_LE(lines, 32u);
  EXPECT_GT(lines, 0u);
  std::remove(dump_path.c_str());

  // run_chaos owned the ring: it must not leak an enabled trace.
  EXPECT_FALSE(sim::Trace::instance().enabled());
  EXPECT_EQ(sim::Trace::instance().size(), 0u);
}

TEST(Chaos, QuietPlanDegradesToPlainIndoorRun) {
  ChaosRunConfig cfg;
  cfg.seed = 11;
  cfg.horizon = sim::Time::seconds_i(600);
  const auto res = run_chaos(cfg);
  EXPECT_EQ(res.final_snapshot.faults.crashes, 0u);
  EXPECT_EQ(res.final_snapshot.faults.reboots, 0u);
  EXPECT_TRUE(res.invariants_hold());
  EXPECT_GT(res.live_chunks, 0u);
}

}  // namespace
}  // namespace enviromic::core
