#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "sim/rng.h"
#include "storage/codec.h"

namespace enviromic::storage {
namespace {

std::vector<std::uint8_t> silence(std::size_t n) {
  return std::vector<std::uint8_t>(n, 128);
}

std::vector<std::uint8_t> tone(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(
        128 + 100 * std::sin(2.0 * std::numbers::pi * i / 50.0));
  }
  return out;
}

std::vector<std::uint8_t> noise(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return out;
}

TEST(Codec, Names) {
  EXPECT_STREQ(codec_name(CodecKind::kNone), "none");
  EXPECT_STREQ(codec_name(CodecKind::kRle), "rle");
  EXPECT_STREQ(codec_name(CodecKind::kDelta), "delta");
}

TEST(Codec, NoneRoundTrips) {
  const auto data = tone(1000);
  EXPECT_EQ(decode(encode(CodecKind::kNone, data)), data);
}

TEST(Codec, RleCollapsesSilence) {
  const auto data = silence(2730);
  const auto blob = encode(CodecKind::kRle, data);
  EXPECT_LT(blob.size(), data.size() / 50);
  EXPECT_EQ(decode(blob), data);
}

TEST(Codec, DeltaCollapsesSilenceToo) {
  const auto data = silence(2730);
  const auto blob = encode(CodecKind::kDelta, data);
  EXPECT_LT(blob.size(), data.size() / 50);
  EXPECT_EQ(decode(blob), data);
}

TEST(Codec, IncompressibleFallsBackToRaw) {
  const auto data = noise(1000, 3);
  const auto blob = encode(CodecKind::kRle, data);
  // At most one byte of header overhead, never an expansion beyond that.
  EXPECT_LE(blob.size(), data.size() + 1);
  EXPECT_EQ(decode(blob), data);
  EXPECT_EQ(static_cast<CodecKind>(blob[0]), CodecKind::kNone);
}

TEST(Codec, EmptyInput) {
  const std::vector<std::uint8_t> empty;
  for (auto kind : {CodecKind::kNone, CodecKind::kRle, CodecKind::kDelta}) {
    const auto blob = encode(kind, empty);
    EXPECT_EQ(blob.size(), 1u);
    EXPECT_TRUE(decode(blob).empty());
  }
}

TEST(Codec, DecodeRejectsGarbage) {
  EXPECT_THROW(decode(std::vector<std::uint8_t>{}), std::invalid_argument);
  EXPECT_THROW(decode(std::vector<std::uint8_t>{99, 1, 2}),
               std::invalid_argument);
  // RLE body with odd length.
  EXPECT_THROW(decode(std::vector<std::uint8_t>{1, 5, 128, 3}),
               std::invalid_argument);
  // RLE zero run.
  EXPECT_THROW(decode(std::vector<std::uint8_t>{1, 0, 128}),
               std::invalid_argument);
}

TEST(Codec, CompressionRatioHelper) {
  EXPECT_LT(compression_ratio(CodecKind::kRle, silence(1000)), 0.05);
  EXPECT_NEAR(compression_ratio(CodecKind::kRle, noise(1000, 4)), 1.0, 0.01);
  EXPECT_EQ(compression_ratio(CodecKind::kRle, {}), 1.0);
}

TEST(Codec, MixedAudioCompressesWithDelta) {
  // Half silence, half tone: a realistic chunk with a syllable gap.
  auto data = silence(1400);
  const auto t = tone(1330);
  data.insert(data.end(), t.begin(), t.end());
  const double ratio = compression_ratio(CodecKind::kDelta, data);
  EXPECT_LT(ratio, 0.85);
  EXPECT_EQ(decode(encode(CodecKind::kDelta, data)), data);
}

class CodecProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecProperty, RoundTripsArbitraryData) {
  sim::Rng rng(GetParam());
  // Mix of runs, ramps and noise.
  std::vector<std::uint8_t> data;
  const int sections = static_cast<int>(rng.uniform_int(1, 8));
  for (int sct = 0; sct < sections; ++sct) {
    const auto len = rng.uniform_int(0, 600);
    const auto mode = rng.uniform_int(0, 2);
    std::uint8_t v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    for (std::int64_t i = 0; i < len; ++i) {
      if (mode == 1) v = static_cast<std::uint8_t>(v + 1);
      if (mode == 2) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      data.push_back(v);
    }
  }
  for (auto kind : {CodecKind::kNone, CodecKind::kRle, CodecKind::kDelta}) {
    EXPECT_EQ(decode(encode(kind, data)), data) << codec_name(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomStreams, CodecProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace enviromic::storage
