#include <gtest/gtest.h>

#include <memory>

#include "core/neighborhood.h"
#include "net/channel.h"
#include "sim/scheduler.h"

namespace enviromic::core {
namespace {

using sim::Time;

struct NbFixture {
  sim::Scheduler sched;
  net::ChannelConfig ccfg = make_ccfg();
  net::Channel channel{sched, sim::Rng(5), ccfg};
  std::unique_ptr<net::Radio> a = channel.create_radio(1, {0, 0});
  std::unique_ptr<net::Radio> b = channel.create_radio(2, {2, 0});
  std::vector<net::Packet> received;

  static net::ChannelConfig make_ccfg() {
    net::ChannelConfig c;
    c.loss_probability = 0.0;
    return c;
  }

  NbFixture() {
    b->set_receive_handler([this](const net::Packet& p) { received.push_back(p); });
  }
};

TEST(Neighborhood, SendNowTransmitsImmediately) {
  NbFixture f;
  NeighborhoodBroadcast nb(*f.a, f.sched);
  EXPECT_TRUE(nb.send_now(net::Sensing{}));
  f.sched.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].messages.size(), 1u);
  EXPECT_EQ(nb.stats().packets_sent, 1u);
}

TEST(Neighborhood, LazyMessagesPiggybackOnNextSend) {
  NbFixture f;
  NeighborhoodBroadcast nb(*f.a, f.sched);
  nb.send_lazy(net::StateBeacon{});
  nb.send_lazy(net::TimeSyncBeacon{});
  EXPECT_EQ(nb.lazy_queue_depth(), 2u);
  nb.send_now(net::Sensing{});
  f.sched.run_until(Time::millis(100));
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].messages.size(), 3u);
  EXPECT_EQ(nb.stats().piggybacked_messages, 2u);
  EXPECT_EQ(nb.lazy_queue_depth(), 0u);
}

TEST(Neighborhood, PiggybackRespectsMaxPayload) {
  NbFixture f;
  NeighborhoodBroadcast::Config cfg;
  cfg.max_payload_bytes = 40;  // room for ~2 small messages only
  NeighborhoodBroadcast nb(*f.a, f.sched, cfg);
  for (int i = 0; i < 6; ++i) nb.send_lazy(net::StateBeacon{});
  nb.send_now(net::Sensing{});
  f.sched.run_until(Time::millis(50));
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_LE(f.received[0].payload_bytes(), 40u);
  EXPECT_GT(nb.lazy_queue_depth(), 0u);  // the rest stays queued
}

TEST(Neighborhood, LazyFlushTimerFiresWithoutUrgentTraffic) {
  NbFixture f;
  NeighborhoodBroadcast::Config cfg;
  cfg.max_lazy_delay = Time::millis(500);
  NeighborhoodBroadcast nb(*f.a, f.sched, cfg);
  nb.send_lazy(net::StateBeacon{});
  f.sched.run_until(Time::millis(400));
  EXPECT_TRUE(f.received.empty());
  f.sched.run_until(Time::seconds_i(2));
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(nb.stats().lazy_flushes, 1u);
}

TEST(Neighborhood, SendNowFailsWhenRadioOff) {
  NbFixture f;
  NeighborhoodBroadcast nb(*f.a, f.sched);
  f.a->set_on(false);
  EXPECT_FALSE(nb.send_now(net::Sensing{}));
  EXPECT_EQ(nb.stats().dropped_radio_off, 1u);
}

TEST(Neighborhood, LazyFlushRetriesWhileRadioOff) {
  NbFixture f;
  NeighborhoodBroadcast::Config cfg;
  cfg.max_lazy_delay = Time::millis(100);
  NeighborhoodBroadcast nb(*f.a, f.sched, cfg);
  nb.send_lazy(net::StateBeacon{});
  f.a->set_on(false);
  f.sched.run_until(Time::millis(500));
  EXPECT_TRUE(f.received.empty());
  EXPECT_EQ(nb.lazy_queue_depth(), 1u);  // preserved, not dropped
  f.a->set_on(true);
  f.sched.run_until(Time::seconds_i(1));
  EXPECT_EQ(f.received.size(), 1u);
}

TEST(Neighborhood, SendToCarriesUnicastDst) {
  NbFixture f;
  NeighborhoodBroadcast nb(*f.a, f.sched);
  nb.send_to(2, net::TaskRequest{});
  f.sched.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].dst, 2u);
}

TEST(Neighborhood, SelfReportsId) {
  NbFixture f;
  NeighborhoodBroadcast nb(*f.a, f.sched);
  EXPECT_EQ(nb.self(), 1u);
}

}  // namespace
}  // namespace enviromic::core
