#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "sim/rng.h"
#include "storage/chunk_store.h"

namespace enviromic::storage {
namespace {

struct StoreFixture {
  FlashConfig flash_cfg;
  Flash flash;
  Eeprom eeprom;
  ChunkStore store;

  explicit StoreFixture(std::uint64_t capacity = 8 * 1024,
                        bool payloads = false)
      : flash_cfg(make_cfg(capacity, payloads)),
        flash(flash_cfg),
        store(flash, eeprom) {}

  static FlashConfig make_cfg(std::uint64_t capacity, bool payloads) {
    FlashConfig cfg;
    cfg.capacity_bytes = capacity;
    cfg.block_size = 256;
    cfg.store_payloads = payloads;
    return cfg;
  }

  Chunk make_chunk(std::uint32_t bytes, net::NodeId node = 1) {
    Chunk c;
    c.meta.key = store.next_key(node);
    c.meta.bytes = bytes;
    c.meta.recorded_by = node;
    return c;
  }
};

TEST(ChunkStore, BlocksForRoundsUp) {
  StoreFixture f;
  EXPECT_EQ(f.store.blocks_for(0), 1u);
  EXPECT_EQ(f.store.blocks_for(1), 1u);
  EXPECT_EQ(f.store.blocks_for(256), 1u);
  EXPECT_EQ(f.store.blocks_for(257), 2u);
  EXPECT_EQ(f.store.blocks_for(2730), 11u);
}

TEST(ChunkStore, AppendAndAccounting) {
  StoreFixture f;
  EXPECT_TRUE(f.store.append(f.make_chunk(600)));  // 3 blocks
  EXPECT_EQ(f.store.chunk_count(), 1u);
  EXPECT_EQ(f.store.used_bytes(), 3u * 256u);
  EXPECT_EQ(f.store.used_payload_bytes(), 600u);
  EXPECT_EQ(f.store.free_bytes(), 8 * 1024 - 3 * 256);
}

TEST(ChunkStore, ForEachUntilStopsAtFirstFalse) {
  StoreFixture f(/*capacity=*/64 * 1024);
  for (int i = 0; i < 20; ++i) f.store.append(f.make_chunk(100));
  // Early-exit iteration visits exactly the prefix a transfer offer needs,
  // not the whole queue.
  int visited = 0;
  std::uint64_t bytes = 0;
  f.store.for_each_until([&](const ChunkMeta& m) {
    if (visited >= 3) return false;
    ++visited;
    bytes += m.bytes;
    return true;
  });
  EXPECT_EQ(visited, 3);
  EXPECT_EQ(bytes, 300u);
  // A callback that never declines sees everything, oldest first.
  std::vector<std::uint64_t> keys;
  f.store.for_each_until([&](const ChunkMeta& m) {
    keys.push_back(m.key);
    return true;
  });
  EXPECT_EQ(keys.size(), 20u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(ChunkStore, RejectsWhenFull) {
  StoreFixture f(/*capacity=*/1024);  // 4 blocks
  EXPECT_TRUE(f.store.append(f.make_chunk(700)));  // 3 blocks
  EXPECT_FALSE(f.store.can_fit(600));
  EXPECT_FALSE(f.store.append(f.make_chunk(600)));
  EXPECT_EQ(f.store.rejected_appends(), 1u);
  EXPECT_TRUE(f.store.append(f.make_chunk(100)));  // 1 block fits
  EXPECT_TRUE(f.store.full());
}

TEST(ChunkStore, PopHeadIsFifo) {
  StoreFixture f;
  auto c1 = f.make_chunk(100);
  auto c2 = f.make_chunk(100);
  const auto k1 = c1.meta.key;
  const auto k2 = c2.meta.key;
  f.store.append(std::move(c1));
  f.store.append(std::move(c2));
  EXPECT_EQ(f.store.pop_head()->meta.key, k1);
  EXPECT_EQ(f.store.pop_head()->meta.key, k2);
  EXPECT_FALSE(f.store.pop_head().has_value());
}

TEST(ChunkStore, PopFreesSpaceForNewAppends) {
  StoreFixture f(/*capacity=*/1024);
  f.store.append(f.make_chunk(900));  // 4 blocks = full
  EXPECT_TRUE(f.store.full());
  f.store.pop_head();
  EXPECT_EQ(f.store.used_bytes(), 0u);
  EXPECT_TRUE(f.store.append(f.make_chunk(900)));
}

TEST(ChunkStore, HeadMetaPeeksWithoutRemoval) {
  StoreFixture f;
  auto c = f.make_chunk(100);
  const auto key = c.meta.key;
  f.store.append(std::move(c));
  ASSERT_NE(f.store.head_meta(), nullptr);
  EXPECT_EQ(f.store.head_meta()->key, key);
  EXPECT_EQ(f.store.chunk_count(), 1u);
  StoreFixture empty;
  EXPECT_EQ(empty.store.head_meta(), nullptr);
}

TEST(ChunkStore, PopTailIfMatchesOnlyNewest) {
  StoreFixture f;
  auto c1 = f.make_chunk(100);
  auto c2 = f.make_chunk(100);
  const auto k1 = c1.meta.key;
  const auto k2 = c2.meta.key;
  f.store.append(std::move(c1));
  f.store.append(std::move(c2));
  EXPECT_FALSE(f.store.pop_tail_if(k1));  // not the tail
  EXPECT_TRUE(f.store.pop_tail_if(k2));
  EXPECT_EQ(f.store.chunk_count(), 1u);
  EXPECT_FALSE(f.store.pop_tail_if(k2));  // already gone
}

TEST(ChunkStore, NextKeyEncodesNodeAndCounter) {
  StoreFixture f;
  const auto k0 = f.store.next_key(7);
  const auto k1 = f.store.next_key(7);
  EXPECT_EQ(chunk_key_node(k0), 7u);
  EXPECT_EQ(chunk_key_node(k1), 7u);
  EXPECT_NE(k0, k1);
}

TEST(ChunkStore, PayloadRoundTrip) {
  StoreFixture f(8 * 1024, /*payloads=*/true);
  Chunk c = f.make_chunk(600);
  c.payload.resize(600);
  for (std::size_t i = 0; i < c.payload.size(); ++i)
    c.payload[i] = static_cast<std::uint8_t>(i & 0xFF);
  const auto key = c.meta.key;
  f.store.append(std::move(c));
  const auto back = f.store.read_payload(key);
  ASSERT_EQ(back.size(), 600u);
  for (std::size_t i = 0; i < back.size(); ++i)
    EXPECT_EQ(back[i], static_cast<std::uint8_t>(i & 0xFF));
}

TEST(ChunkStore, ReadPayloadUnknownKeyEmpty) {
  StoreFixture f(8 * 1024, true);
  EXPECT_TRUE(f.store.read_payload(12345).empty());
}

TEST(ChunkStore, ForEachVisitsOldestFirst) {
  StoreFixture f;
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 5; ++i) {
    auto c = f.make_chunk(100);
    keys.push_back(c.meta.key);
    f.store.append(std::move(c));
  }
  std::vector<std::uint64_t> seen;
  f.store.for_each([&](const ChunkMeta& m) { seen.push_back(m.key); });
  EXPECT_EQ(seen, keys);
}

TEST(ChunkStore, WearLevelingDifferByAtMostOne) {
  // The paper's property: strictly circular consumption keeps per-block
  // write counts within 1 of each other, under any append/pop pattern.
  StoreFixture f(/*capacity=*/4 * 1024);  // 16 blocks
  sim::Rng rng(77);
  for (int op = 0; op < 3000; ++op) {
    if (rng.chance(0.6)) {
      const auto bytes = static_cast<std::uint32_t>(rng.uniform_int(1, 700));
      if (f.store.can_fit(bytes)) {
        f.store.append(f.make_chunk(bytes));
      } else {
        f.store.pop_head();
      }
    } else {
      f.store.pop_head();
    }
  }
  EXPECT_LE(f.flash.max_wear() - f.flash.min_wear(), 1u);
  EXPECT_GT(f.flash.max_wear(), 10u);  // the ring actually cycled
}

TEST(ChunkStore, CheckpointCadence) {
  StoreFixture f;
  const auto writes_before = f.eeprom.writes();
  for (int i = 0; i < 8; ++i) f.store.append(f.make_chunk(10));
  EXPECT_EQ(f.eeprom.writes(), writes_before + 1);  // every 8 mutations
  f.store.checkpoint();
  EXPECT_EQ(f.eeprom.writes(), writes_before + 2);
}

TEST(ChunkStore, ZeroByteChunkOccupiesOneBlock) {
  StoreFixture f;
  EXPECT_TRUE(f.store.append(f.make_chunk(0)));
  EXPECT_EQ(f.store.used_bytes(), 256u);
  auto back = f.store.pop_head();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->meta.bytes, 0u);
}

// Model-based property test: the store behaves like a bounded FIFO queue.
class StoreModelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StoreModelProperty, MatchesReferenceFifo) {
  StoreFixture f(/*capacity=*/4 * 1024);
  sim::Rng rng(GetParam());
  std::deque<std::pair<std::uint64_t, std::uint32_t>> model;  // key, bytes
  std::uint32_t model_blocks = 0;
  const std::uint32_t total_blocks = 16;
  for (int op = 0; op < 2000; ++op) {
    if (rng.chance(0.65)) {
      auto c = f.make_chunk(static_cast<std::uint32_t>(rng.uniform_int(0, 900)));
      const auto key = c.meta.key;
      const auto bytes = c.meta.bytes;
      const auto nblocks = f.store.blocks_for(bytes);
      const bool should_fit = model_blocks + nblocks <= total_blocks;
      EXPECT_EQ(f.store.append(std::move(c)), should_fit);
      if (should_fit) {
        model.emplace_back(key, bytes);
        model_blocks += nblocks;
      }
    } else {
      auto popped = f.store.pop_head();
      if (model.empty()) {
        EXPECT_FALSE(popped.has_value());
      } else {
        ASSERT_TRUE(popped.has_value());
        EXPECT_EQ(popped->meta.key, model.front().first);
        EXPECT_EQ(popped->meta.bytes, model.front().second);
        model_blocks -= f.store.blocks_for(model.front().second);
        model.pop_front();
      }
    }
    EXPECT_EQ(f.store.chunk_count(), model.size());
    EXPECT_EQ(f.store.used_bytes(),
              static_cast<std::uint64_t>(model_blocks) * 256u);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomOps, StoreModelProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace enviromic::storage
