#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/rng.h"

namespace enviromic::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values hit
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng r(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(7, 7), 7);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng r(12);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, ExponentialIsPositive) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(r.exponential(1.0), 0.0);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng r(14);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, ChanceExtremes) {
  Rng r(15);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng r(16);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ForkByTagIsDeterministic) {
  Rng a(42), b(42);
  Rng fa = a.fork("detector");
  Rng fb = b.fork("detector");
  for (int i = 0; i < 20; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

TEST(Rng, ForksWithDifferentTagsAreIndependent) {
  Rng root(42);
  Rng a = root.fork("alpha");
  Rng b = root.fork("beta");
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkDoesNotPerturbParentStream) {
  Rng a(42), b(42);
  (void)a.fork("x");
  (void)a.fork(std::uint64_t{99});
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkByIdDistinct) {
  Rng root(42);
  Rng f1 = root.fork(std::uint64_t{1});
  Rng f2 = root.fork(std::uint64_t{2});
  EXPECT_NE(f1.next_u64(), f2.next_u64());
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanNearHalf) {
  Rng r(GetParam());
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST_P(RngSeedSweep, UniformIntUnbiasedOverSmallRange) {
  Rng r(GetParam() ^ 0xABCDEF);
  int counts[5] = {};
  const int n = 10000;
  for (int i = 0; i < n; ++i) ++counts[r.uniform_int(0, 4)];
  for (int c : counts) EXPECT_NEAR(c, n / 5, n / 25);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 3, 1000, 99999, 123456789));

}  // namespace
}  // namespace enviromic::sim
