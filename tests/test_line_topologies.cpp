// Non-grid topologies: the protocols are topology-agnostic; these tests run
// the full stack on line, sparse, and partitioned deployments.
#include <gtest/gtest.h>

#include "world_fixture.h"

namespace enviromic::core {
namespace {

using testing::WorldBuilder;
using testing::add_event;
using testing::leader_count;

std::unique_ptr<World> line(std::uint64_t seed, int n, double spacing) {
  WorldBuilder b;
  b.mode(Mode::kCooperativeOnly).seed(seed).perfect_detection().lossless_radio();
  auto world = std::make_unique<World>(b.cfg);
  for (int i = 0; i < n; ++i) world->add_node({spacing * i, 0.0});
  return world;
}

TEST(Topology, PicketLineCoversAPassingSource) {
  auto world = line(281, 10, 3.0);
  MobileEventConfig ev;
  ev.from = {-4, 0};
  ev.to = {31, 0};
  ev.speed = 3.0;
  ev.start = sim::Time::seconds_i(4);
  ev.duration = sim::Time::seconds_i(10);
  ev.audible_range = 3.5;
  add_mobile_event(*world, ev);
  world->start();
  world->run_until(sim::Time::seconds_i(20));
  util::IntervalSet rec;
  for (const auto& act : world->metrics().recording_log()) {
    if (act.appended) rec.add(act.start, act.end);
  }
  const double covered =
      rec.measure_within(ev.start, ev.start + ev.duration).to_seconds();
  EXPECT_GT(covered, 8.0);
}

TEST(Topology, PartitionedClustersElectIndependentLeaders) {
  // Two clusters far apart: one event in each; no cross-cluster radio.
  WorldBuilder b;
  b.mode(Mode::kCooperativeOnly).seed(282).perfect_detection().lossless_radio();
  auto world = std::make_unique<World>(b.cfg);
  for (int i = 0; i < 4; ++i) world->add_node({2.0 * i, 0.0});
  for (int i = 0; i < 4; ++i) world->add_node({100.0 + 2.0 * i, 0.0});
  add_event(*world, {3, 0}, 5.0, 20.0, 3.5);
  add_event(*world, {103, 0}, 5.0, 20.0, 3.5);
  world->start();
  world->run_until(sim::Time::seconds_i(12));
  // At least one leader per cluster; within a cluster the outermost hearers
  // are 6 ft apart (beyond the 4 ft radio), so the paper's multi-leader
  // case can legitimately appear.
  EXPECT_GE(leader_count(*world), 2);
  EXPECT_LE(leader_count(*world), 4);
  world->run_until(sim::Time::seconds_i(25));
  EXPECT_LT(world->snapshot().miss_ratio, 0.2);
}

TEST(Topology, IsolatedNodeRecordsAlone) {
  WorldBuilder b;
  b.mode(Mode::kCooperativeOnly).seed(283).perfect_detection().lossless_radio();
  auto world = std::make_unique<World>(b.cfg);
  world->add_node({0, 0});
  add_event(*world, {0.5, 0}, 5.0, 15.0, 2.0);
  world->start();
  world->run_until(sim::Time::seconds_i(20));
  // Self-elected, self-assigned, fully local.
  EXPECT_LT(world->snapshot().miss_ratio, 0.25);
  EXPECT_GT(world->node(0).tasking().stats().self_assignments, 5u);
}

TEST(Topology, SparseNodesFarApartActAsBaselineIslands) {
  // Spacing beyond comm range: every hearer coordinates only with itself.
  auto world = line(284, 5, 10.0);  // 10 ft apart, 4 ft radio
  add_event(*world, {20, 0}, 5.0, 15.0, 2.5);  // heard only by node 3
  world->start();
  world->run_until(sim::Time::seconds_i(20));
  const auto snap = world->snapshot();
  EXPECT_LT(snap.miss_ratio, 0.3);
  EXPECT_EQ(snap.redundancy_ratio, 0.0);
}

TEST(Topology, BalancingWorksDownALine) {
  // Chunks migrate hop by hop along a line when only the first node is
  // loaded (the Fig 18 cascading mechanism in its purest form). Small
  // flashes force the immediate neighbour to shed onward.
  WorldBuilder b;
  b.mode(Mode::kFull, 2.0).seed(285).lossless_radio();
  b.cfg.node_defaults.flash.capacity_bytes = 64 * 1024;
  auto world = std::make_unique<World>(b.cfg);
  for (int i = 0; i < 5; ++i) world->add_node({3.0 * i, 0.0});
  auto& hot = world->node(0);
  while (hot.store().can_fit(2730)) {
    storage::Chunk c;
    c.meta.key = hot.store().next_key(hot.id());
    c.meta.bytes = 2730;
    hot.store().append(std::move(c));
  }
  world->start();
  for (int t = 1; t <= 4; ++t) {
    world->run_until(sim::Time::seconds_i(10 * t));
    hot.balancer().note_recorded_bytes(40000);
  }
  world->run_until(sim::Time::seconds_i(900));
  // Data reached beyond the immediate neighbour.
  std::uint64_t beyond = 0;
  for (std::size_t i = 2; i < world->node_count(); ++i) {
    beyond += world->node(i).store().chunk_count();
  }
  EXPECT_GT(beyond, 0u);
}

}  // namespace
}  // namespace enviromic::core
