#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/channel.h"
#include "sim/scheduler.h"

namespace enviromic::net {
namespace {

using sim::Time;

struct ChannelFixture {
  sim::Scheduler sched;
  ChannelConfig cfg;
  std::unique_ptr<Channel> channel;

  explicit ChannelFixture(ChannelConfig c = make_default()) : cfg(c) {
    channel = std::make_unique<Channel>(sched, sim::Rng(31), cfg);
  }

  static ChannelConfig make_default() {
    ChannelConfig c;
    c.comm_range = 10.0;
    c.loss_probability = 0.0;
    c.model_collisions = true;
    return c;
  }

  Packet packet_from(NodeId src, NodeId dst = kBroadcast) {
    Packet p;
    p.src = src;
    p.dst = dst;
    p.messages.push_back(Sensing{});
    return p;
  }
};

TEST(Channel, DeliversWithinRange) {
  ChannelFixture f;
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {5, 0});
  int received = 0;
  b->set_receive_handler([&](const Packet&) { ++received; });
  a->send(f.packet_from(1));
  f.sched.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(a->stats().packets_sent, 1u);
  EXPECT_EQ(b->stats().packets_received, 1u);
}

TEST(Channel, NoDeliveryBeyondRange) {
  ChannelFixture f;
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {15, 0});
  int received = 0;
  b->set_receive_handler([&](const Packet&) { ++received; });
  a->send(f.packet_from(1));
  f.sched.run();
  EXPECT_EQ(received, 0);
}

TEST(Channel, DeliveryIsDelayedByAirTime) {
  ChannelFixture f;
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {5, 0});
  Time arrival;
  b->set_receive_handler([&](const Packet&) { arrival = f.sched.now(); });
  const auto air = f.channel->air_time(f.packet_from(1).total_bytes());
  a->send(f.packet_from(1));
  f.sched.run();
  EXPECT_EQ(arrival, air);
  EXPECT_GT(air, Time::zero());
}

TEST(Channel, RadioOffMissesPackets) {
  ChannelFixture f;
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {5, 0});
  int received = 0;
  b->set_receive_handler([&](const Packet&) { ++received; });
  b->set_on(false);
  a->send(f.packet_from(1));
  f.sched.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(b->stats().packets_missed_off, 1u);
  EXPECT_EQ(f.channel->stats().losses_radio_off, 1u);
}

TEST(Channel, OffRadioCannotSend) {
  ChannelFixture f;
  auto a = f.channel->create_radio(1, {0, 0});
  a->set_on(false);
  EXPECT_FALSE(a->send(f.packet_from(1)));
}

TEST(Channel, UnicastIsOverheardByThirdParties) {
  // Overhearing is load-bearing in EnviroMic (TASK_CONFIRM suppression).
  ChannelFixture f;
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {5, 0});
  auto c = f.channel->create_radio(3, {0, 5});
  int b_received = 0, c_received = 0;
  b->set_receive_handler([&](const Packet&) { ++b_received; });
  c->set_receive_handler([&](const Packet&) { ++c_received; });
  a->send(f.packet_from(1, /*dst=*/2));
  f.sched.run();
  EXPECT_EQ(b_received, 1);
  EXPECT_EQ(c_received, 1);
}

TEST(Channel, LossProbabilityRoughlyHonoured) {
  auto cfg = ChannelFixture::make_default();
  cfg.loss_probability = 0.3;
  cfg.model_collisions = false;
  ChannelFixture f(cfg);
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {5, 0});
  int received = 0;
  b->set_receive_handler([&](const Packet&) { ++received; });
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    f.sched.after(Time::millis(i * 10), [&] { a->send(f.packet_from(1)); });
  }
  f.sched.run();
  EXPECT_NEAR(static_cast<double>(received) / n, 0.7, 0.05);
  EXPECT_EQ(b->stats().packets_lost + b->stats().packets_received,
            static_cast<std::uint64_t>(n));
}

TEST(Channel, SimultaneousSendersDeferViaCsma) {
  ChannelFixture f;
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {1, 0});
  auto c = f.channel->create_radio(3, {2, 0});
  int received = 0;
  c->set_receive_handler([&](const Packet&) { ++received; });
  // Both transmit at the same instant: the second should carrier-sense the
  // first and back off, so both eventually deliver.
  f.sched.at(Time::millis(1), [&] { a->send(f.packet_from(1)); });
  f.sched.at(Time::millis(1), [&] { b->send(f.packet_from(2)); });
  f.sched.run();
  EXPECT_EQ(received, 2);
  EXPECT_GE(a->stats().csma_backoffs + b->stats().csma_backoffs, 1u);
  EXPECT_EQ(f.channel->stats().losses_collision, 0u);
}

TEST(Channel, HiddenTerminalCollides) {
  // a and c are out of carrier-sense range of each other but both reach b.
  auto cfg = ChannelFixture::make_default();
  cfg.comm_range = 10.0;
  cfg.carrier_sense_factor = 1.0;
  ChannelFixture f(cfg);
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {9, 0});
  auto c = f.channel->create_radio(3, {18, 0});
  int received = 0;
  b->set_receive_handler([&](const Packet&) { ++received; });
  f.sched.at(Time::millis(1), [&] { a->send(f.packet_from(1)); });
  f.sched.at(Time::millis(1), [&] { c->send(f.packet_from(3)); });
  f.sched.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(f.channel->stats().losses_collision, 2u);
}

TEST(Channel, AirTimeScalesWithSize) {
  ChannelFixture f;
  EXPECT_GT(f.channel->air_time(200), f.channel->air_time(50));
  // 250 kbps: 125 bytes = 1000 bits = 4 ms.
  EXPECT_NEAR(f.channel->air_time(125).to_seconds(), 0.004, 1e-9);
}

TEST(Channel, NeighborsOfRespectsRange) {
  ChannelFixture f;
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {5, 0});
  auto c = f.channel->create_radio(3, {50, 0});
  const auto n = f.channel->neighbors_of(1);
  ASSERT_EQ(n.size(), 1u);
  EXPECT_EQ(n[0], 2u);
  EXPECT_TRUE(f.channel->neighbors_of(3).empty());
  EXPECT_TRUE(f.channel->neighbors_of(99).empty());
}

TEST(Channel, SpatialIndexMatchesLinearNeighborQueries) {
  // Same deployment (including negative coordinates, which exercise the
  // floor-based cell partition) queried with the grid index on and off must
  // agree exactly, including neighbor order.
  auto indexed_cfg = ChannelFixture::make_default();
  auto linear_cfg = ChannelFixture::make_default();
  linear_cfg.use_spatial_index = false;
  ChannelFixture indexed(indexed_cfg);
  ChannelFixture linear(linear_cfg);

  std::vector<std::unique_ptr<Radio>> keep;
  sim::Rng rng(99);
  for (NodeId id = 1; id <= 60; ++id) {
    const sim::Position pos{rng.uniform(-40.0, 40.0), rng.uniform(-40.0, 40.0)};
    keep.push_back(indexed.channel->create_radio(id, pos));
    keep.push_back(linear.channel->create_radio(id, pos));
  }
  for (NodeId id = 1; id <= 60; ++id) {
    EXPECT_EQ(indexed.channel->neighbors_of(id), linear.channel->neighbors_of(id))
        << "node " << id;
  }
  EXPECT_TRUE(indexed.channel->spatial_index_active());
  EXPECT_FALSE(linear.channel->spatial_index_active());
}

TEST(Channel, MovedRadioIsTrackedAcrossCells) {
  // A mobile radio (data mule) must be found through the grid at its current
  // position, not the cell it was registered in.
  ChannelFixture f;
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {100, 100});
  int received = 0;
  b->set_receive_handler([&](const Packet&) { ++received; });

  a->send(f.packet_from(1));
  f.sched.run();
  EXPECT_EQ(received, 0);

  b->set_position({5, 0});
  EXPECT_EQ(f.channel->neighbors_of(1), (std::vector<NodeId>{2}));
  a->send(f.packet_from(1));
  f.sched.run();
  EXPECT_EQ(received, 1);

  b->set_position({200, 200});
  EXPECT_TRUE(f.channel->neighbors_of(1).empty());
  a->send(f.packet_from(1));
  f.sched.run();
  EXPECT_EQ(received, 1);
}

TEST(Channel, RadioDestroyedByReceiveHandlerDuringDelivery) {
  // A receive handler that tears down another radio (a node crashing under a
  // fault plan) must not derail the in-progress delivery loop: the destroyed
  // radio is skipped, everyone else still hears the packet.
  ChannelFixture f;
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {1, 0});
  auto c = f.channel->create_radio(3, {2, 0});
  auto d = f.channel->create_radio(4, {3, 0});
  int c_received = 0, d_received = 0;
  b->set_receive_handler([&](const Packet&) { c.reset(); });
  c->set_receive_handler([&](const Packet&) { ++c_received; });
  d->set_receive_handler([&](const Packet&) { ++d_received; });
  a->send(f.packet_from(1));
  f.sched.run();
  EXPECT_EQ(c, nullptr);
  EXPECT_EQ(c_received, 0);  // destroyed before its delivery slot
  EXPECT_EQ(d_received, 1);  // later recipients still served
}

TEST(Channel, IdRebindsToNextRadioAfterUnregister) {
  ChannelFixture f;
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {5, 0});
  b.reset();
  EXPECT_TRUE(f.channel->neighbors_of(2).empty());
  EXPECT_TRUE(f.channel->neighbors_of(1).empty());
  auto b2 = f.channel->create_radio(2, {3, 0});
  EXPECT_EQ(f.channel->neighbors_of(2), (std::vector<NodeId>{1}));
  EXPECT_EQ(f.channel->neighbors_of(1), (std::vector<NodeId>{2}));
}

TEST(Channel, MessageTypeCountersTrack) {
  ChannelFixture f;
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {5, 0});
  (void)b;
  Packet p;
  p.src = 1;
  p.messages.push_back(TaskRequest{});
  p.messages.push_back(Sensing{});
  a->send(std::move(p));
  f.sched.run();
  EXPECT_EQ(a->stats().messages_sent[type_index(Message{TaskRequest{}})], 1u);
  EXPECT_EQ(a->stats().messages_sent[type_index(Message{Sensing{}})], 1u);
  EXPECT_EQ(a->stats().messages_sent[type_index(Message{Resign{}})], 0u);
}

TEST(Channel, AirtimeHandlerChargesBothDirections) {
  ChannelFixture f;
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {5, 0});
  double tx_s = 0, rx_s = 0;
  a->set_airtime_handler([&](double s, bool is_tx) {
    if (is_tx) tx_s += s;
  });
  b->set_airtime_handler([&](double s, bool is_tx) {
    if (!is_tx) rx_s += s;
  });
  a->send(f.packet_from(1));
  f.sched.run();
  EXPECT_GT(tx_s, 0.0);
  EXPECT_DOUBLE_EQ(tx_s, rx_s);
}

}  // namespace
}  // namespace enviromic::net
