#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/channel.h"
#include "sim/scheduler.h"

namespace enviromic::net {
namespace {

using sim::Time;

struct ChannelFixture {
  sim::Scheduler sched;
  ChannelConfig cfg;
  std::unique_ptr<Channel> channel;

  explicit ChannelFixture(ChannelConfig c = make_default()) : cfg(c) {
    channel = std::make_unique<Channel>(sched, sim::Rng(31), cfg);
  }

  static ChannelConfig make_default() {
    ChannelConfig c;
    c.comm_range = 10.0;
    c.loss_probability = 0.0;
    c.model_collisions = true;
    return c;
  }

  Packet packet_from(NodeId src, NodeId dst = kBroadcast) {
    Packet p;
    p.src = src;
    p.dst = dst;
    p.messages.push_back(Sensing{});
    return p;
  }
};

TEST(Channel, DeliversWithinRange) {
  ChannelFixture f;
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {5, 0});
  int received = 0;
  b->set_receive_handler([&](const Packet&) { ++received; });
  a->send(f.packet_from(1));
  f.sched.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(a->stats().packets_sent, 1u);
  EXPECT_EQ(b->stats().packets_received, 1u);
}

TEST(Channel, NoDeliveryBeyondRange) {
  ChannelFixture f;
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {15, 0});
  int received = 0;
  b->set_receive_handler([&](const Packet&) { ++received; });
  a->send(f.packet_from(1));
  f.sched.run();
  EXPECT_EQ(received, 0);
}

TEST(Channel, DeliveryIsDelayedByAirTime) {
  ChannelFixture f;
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {5, 0});
  Time arrival;
  b->set_receive_handler([&](const Packet&) { arrival = f.sched.now(); });
  const auto air = f.channel->air_time(f.packet_from(1).total_bytes());
  a->send(f.packet_from(1));
  f.sched.run();
  EXPECT_EQ(arrival, air);
  EXPECT_GT(air, Time::zero());
}

TEST(Channel, RadioOffMissesPackets) {
  ChannelFixture f;
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {5, 0});
  int received = 0;
  b->set_receive_handler([&](const Packet&) { ++received; });
  b->set_on(false);
  a->send(f.packet_from(1));
  f.sched.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(b->stats().packets_missed_off, 1u);
  EXPECT_EQ(f.channel->stats().losses_radio_off, 1u);
}

TEST(Channel, OffRadioCannotSend) {
  ChannelFixture f;
  auto a = f.channel->create_radio(1, {0, 0});
  a->set_on(false);
  EXPECT_FALSE(a->send(f.packet_from(1)));
}

TEST(Channel, UnicastIsOverheardByThirdParties) {
  // Overhearing is load-bearing in EnviroMic (TASK_CONFIRM suppression).
  ChannelFixture f;
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {5, 0});
  auto c = f.channel->create_radio(3, {0, 5});
  int b_received = 0, c_received = 0;
  b->set_receive_handler([&](const Packet&) { ++b_received; });
  c->set_receive_handler([&](const Packet&) { ++c_received; });
  a->send(f.packet_from(1, /*dst=*/2));
  f.sched.run();
  EXPECT_EQ(b_received, 1);
  EXPECT_EQ(c_received, 1);
}

TEST(Channel, LossProbabilityRoughlyHonoured) {
  auto cfg = ChannelFixture::make_default();
  cfg.loss_probability = 0.3;
  cfg.model_collisions = false;
  ChannelFixture f(cfg);
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {5, 0});
  int received = 0;
  b->set_receive_handler([&](const Packet&) { ++received; });
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    f.sched.after(Time::millis(i * 10), [&] { a->send(f.packet_from(1)); });
  }
  f.sched.run();
  EXPECT_NEAR(static_cast<double>(received) / n, 0.7, 0.05);
  EXPECT_EQ(b->stats().packets_lost + b->stats().packets_received,
            static_cast<std::uint64_t>(n));
}

TEST(Channel, SimultaneousSendersDeferViaCsma) {
  ChannelFixture f;
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {1, 0});
  auto c = f.channel->create_radio(3, {2, 0});
  int received = 0;
  c->set_receive_handler([&](const Packet&) { ++received; });
  // Both transmit at the same instant: the second should carrier-sense the
  // first and back off, so both eventually deliver.
  f.sched.at(Time::millis(1), [&] { a->send(f.packet_from(1)); });
  f.sched.at(Time::millis(1), [&] { b->send(f.packet_from(2)); });
  f.sched.run();
  EXPECT_EQ(received, 2);
  EXPECT_GE(a->stats().csma_backoffs + b->stats().csma_backoffs, 1u);
  EXPECT_EQ(f.channel->stats().losses_collision, 0u);
}

TEST(Channel, HiddenTerminalCollides) {
  // a and c are out of carrier-sense range of each other but both reach b.
  auto cfg = ChannelFixture::make_default();
  cfg.comm_range = 10.0;
  cfg.carrier_sense_factor = 1.0;
  ChannelFixture f(cfg);
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {9, 0});
  auto c = f.channel->create_radio(3, {18, 0});
  int received = 0;
  b->set_receive_handler([&](const Packet&) { ++received; });
  f.sched.at(Time::millis(1), [&] { a->send(f.packet_from(1)); });
  f.sched.at(Time::millis(1), [&] { c->send(f.packet_from(3)); });
  f.sched.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(f.channel->stats().losses_collision, 2u);
}

TEST(Channel, AirTimeScalesWithSize) {
  ChannelFixture f;
  EXPECT_GT(f.channel->air_time(200), f.channel->air_time(50));
  // 250 kbps: 125 bytes = 1000 bits = 4 ms.
  EXPECT_NEAR(f.channel->air_time(125).to_seconds(), 0.004, 1e-9);
}

TEST(Channel, NeighborsOfRespectsRange) {
  ChannelFixture f;
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {5, 0});
  auto c = f.channel->create_radio(3, {50, 0});
  const auto n = f.channel->neighbors_of(1);
  ASSERT_EQ(n.size(), 1u);
  EXPECT_EQ(n[0], 2u);
  EXPECT_TRUE(f.channel->neighbors_of(3).empty());
  EXPECT_TRUE(f.channel->neighbors_of(99).empty());
}

TEST(Channel, SpatialIndexMatchesLinearNeighborQueries) {
  // Same deployment (including negative coordinates, which exercise the
  // floor-based cell partition) queried with the grid index on and off must
  // agree exactly, including neighbor order.
  auto indexed_cfg = ChannelFixture::make_default();
  auto linear_cfg = ChannelFixture::make_default();
  linear_cfg.use_spatial_index = false;
  ChannelFixture indexed(indexed_cfg);
  ChannelFixture linear(linear_cfg);

  std::vector<std::unique_ptr<Radio>> keep;
  sim::Rng rng(99);
  for (NodeId id = 1; id <= 60; ++id) {
    const sim::Position pos{rng.uniform(-40.0, 40.0), rng.uniform(-40.0, 40.0)};
    keep.push_back(indexed.channel->create_radio(id, pos));
    keep.push_back(linear.channel->create_radio(id, pos));
  }
  for (NodeId id = 1; id <= 60; ++id) {
    EXPECT_EQ(indexed.channel->neighbors_of(id), linear.channel->neighbors_of(id))
        << "node " << id;
  }
  EXPECT_TRUE(indexed.channel->spatial_index_active());
  EXPECT_FALSE(linear.channel->spatial_index_active());
}

TEST(Channel, MovedRadioIsTrackedAcrossCells) {
  // A mobile radio (data mule) must be found through the grid at its current
  // position, not the cell it was registered in.
  ChannelFixture f;
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {100, 100});
  int received = 0;
  b->set_receive_handler([&](const Packet&) { ++received; });

  a->send(f.packet_from(1));
  f.sched.run();
  EXPECT_EQ(received, 0);

  b->set_position({5, 0});
  EXPECT_EQ(f.channel->neighbors_of(1), (std::vector<NodeId>{2}));
  a->send(f.packet_from(1));
  f.sched.run();
  EXPECT_EQ(received, 1);

  b->set_position({200, 200});
  EXPECT_TRUE(f.channel->neighbors_of(1).empty());
  a->send(f.packet_from(1));
  f.sched.run();
  EXPECT_EQ(received, 1);
}

TEST(Channel, RadioDestroyedByReceiveHandlerDuringDelivery) {
  // A receive handler that tears down another radio (a node crashing under a
  // fault plan) must not derail the in-progress delivery loop: the destroyed
  // radio is skipped, everyone else still hears the packet.
  ChannelFixture f;
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {1, 0});
  auto c = f.channel->create_radio(3, {2, 0});
  auto d = f.channel->create_radio(4, {3, 0});
  int c_received = 0, d_received = 0;
  b->set_receive_handler([&](const Packet&) { c.reset(); });
  c->set_receive_handler([&](const Packet&) { ++c_received; });
  d->set_receive_handler([&](const Packet&) { ++d_received; });
  a->send(f.packet_from(1));
  f.sched.run();
  EXPECT_EQ(c, nullptr);
  EXPECT_EQ(c_received, 0);  // destroyed before its delivery slot
  EXPECT_EQ(d_received, 1);  // later recipients still served
}

TEST(Channel, MassCrashDuringDeliveryServesExactlyTheSurvivors) {
  // Regression for the O(deaths x receivers) dead-list scan: a fault handler
  // that crashes a whole cell mid-delivery must leave the loop serving every
  // survivor exactly once and no destroyed radio at all, whatever the crash
  // count. Radios now null their own snapshot slot in O(1) on unregister.
  ChannelFixture f;
  auto sender = f.channel->create_radio(1, {0, 0});
  std::vector<std::unique_ptr<Radio>> radios;
  std::vector<int> received(64, 0);
  for (NodeId id = 2; id <= 50; ++id) {
    radios.push_back(f.channel->create_radio(id, {0.1 * id, 0.0}));
    radios.back()->set_receive_handler(
        [&received, id](const Packet&) { ++received[id]; });
  }
  // The first receiver in registration order tears down every third radio
  // registered after it — 16 deaths inside one delivery loop.
  radios[0]->set_receive_handler([&](const Packet&) {
    ++received[2];
    for (std::size_t i = 1; i < radios.size(); i += 3) radios[i].reset();
  });
  sender->send(f.packet_from(1));
  f.sched.run();
  std::uint64_t live = 0;
  for (NodeId id = 2; id <= 50; ++id) {
    const std::size_t slot = static_cast<std::size_t>(id) - 2;
    const bool crashed = slot >= 1 && (slot - 1) % 3 == 0;
    if (crashed) {
      EXPECT_EQ(received[id], 0) << "delivered to dead radio " << id;
    } else {
      EXPECT_EQ(received[id], 1) << "skipped live radio " << id;
      ++live;
    }
  }
  EXPECT_EQ(f.channel->stats().deliveries, live);
}

TEST(Channel, NeighborCacheInvalidatedByMidDeliveryUnregister) {
  // A permanent crash that unregisters a radio from inside the delivery loop
  // must invalidate the sender's cached neighbor snapshot before the next
  // send: the dead radio may not be revisited, and a replacement registered
  // afterwards must be found.
  ChannelFixture f;
  auto sender = f.channel->create_radio(1, {0, 0});
  // The witness registers first, so the delivery loop serves it before the
  // victim and its handler can tear the victim down mid-loop.
  auto witness = f.channel->create_radio(2, {2, 0});
  auto victim = f.channel->create_radio(3, {1, 0});
  int witness_received = 0, victim_received = 0;
  // Warm the sender's neighbor cache with a first broadcast.
  witness->set_receive_handler([&](const Packet&) { ++witness_received; });
  victim->set_receive_handler([&](const Packet&) { ++victim_received; });
  sender->send(f.packet_from(1));
  f.sched.run();
  EXPECT_EQ(witness_received, 1);
  EXPECT_EQ(victim_received, 1);
  // Second broadcast: the witness's handler kills the victim mid-loop, so
  // the victim's (already-snapshotted) slot must be skipped.
  witness->set_receive_handler([&](const Packet&) {
    ++witness_received;
    victim.reset();
  });
  sender->send(f.packet_from(1));
  f.sched.run();
  EXPECT_EQ(victim, nullptr);
  EXPECT_EQ(witness_received, 2);
  EXPECT_EQ(victim_received, 1);
  // Third broadcast with no topology change since: if the mid-loop
  // unregister had not bumped the epoch, the sender's cached snapshot would
  // still hold the dangling victim pointer.
  witness->set_receive_handler([&](const Packet&) { ++witness_received; });
  sender->send(f.packet_from(1));
  f.sched.run();
  EXPECT_EQ(witness_received, 3);
  // And a radio registered afterwards is picked up by the refreshed cache.
  auto late = f.channel->create_radio(4, {3, 0});
  int late_received = 0;
  late->set_receive_handler([&](const Packet&) { ++late_received; });
  sender->send(f.packet_from(1));
  f.sched.run();
  EXPECT_EQ(witness_received, 4);
  EXPECT_EQ(late_received, 1);
  EXPECT_EQ(f.channel->stats().deliveries, 6u);
}

namespace {
void expect_same_stats(const ChannelStats& a, const ChannelStats& b) {
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.losses_random, b.losses_random);
  EXPECT_EQ(a.losses_collision, b.losses_collision);
  EXPECT_EQ(a.losses_radio_off, b.losses_radio_off);
  EXPECT_EQ(a.losses_burst, b.losses_burst);
}

void expect_same_stats(const RadioStats& a, const RadioStats& b) {
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packets_received, b.packets_received);
  EXPECT_EQ(a.packets_missed_off, b.packets_missed_off);
  EXPECT_EQ(a.packets_lost, b.packets_lost);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.bytes_received, b.bytes_received);
}

/// Heterogeneous broadcast scenario: hidden-terminal collisions, random and
/// burst losses, powered-off receivers — every delivery-loop branch at once.
/// Returns (channel stats, per-radio stats in id order).
std::pair<ChannelStats, std::vector<RadioStats>> run_heterogeneous(
    bool batched) {
  auto cfg = ChannelFixture::make_default();
  cfg.batched_delivery = batched;
  cfg.carrier_sense_factor = 1.0;
  cfg.loss_probability = 0.2;
  cfg.burst.enabled = true;
  cfg.burst.p_good_to_bad = 0.2;
  cfg.burst.p_bad_to_good = 0.4;
  cfg.burst.loss_bad = 0.8;
  cfg.link_asymmetry_max = 0.3;
  ChannelFixture f(cfg);
  // Hidden terminals a (id 1) and e (id 5) straddle a line of receivers.
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {6, 0});
  auto c = f.channel->create_radio(3, {9, 0});
  auto d = f.channel->create_radio(4, {12, 0});
  auto e = f.channel->create_radio(5, {18, 0});
  auto off = f.channel->create_radio(6, {3, 0});
  off->set_on(false);
  for (int round = 0; round < 200; ++round) {
    f.sched.after(sim::Time::millis(10 * round), [&] {
      a->send(f.packet_from(1));
      e->send(f.packet_from(5));
    });
  }
  f.sched.run();
  std::vector<RadioStats> per_radio{a->stats(), b->stats(), c->stats(),
                                    d->stats(), e->stats(), off->stats()};
  return {f.channel->stats(), per_radio};
}
}  // namespace

TEST(Channel, BatchedDeliveryMatchesScalarPathExactly) {
  // Same seed, same scenario: the batched fan-out (one packet sizing, one
  // interferer gather, precomputed collision verdicts) must be bit-identical
  // to the per-receiver scalar path — same RNG draw order, same counters.
  const auto batched = run_heterogeneous(true);
  const auto scalar = run_heterogeneous(false);
  expect_same_stats(batched.first, scalar.first);
  ASSERT_EQ(batched.second.size(), scalar.second.size());
  for (std::size_t i = 0; i < batched.second.size(); ++i) {
    SCOPED_TRACE(i);
    expect_same_stats(batched.second[i], scalar.second[i]);
  }
  EXPECT_GT(batched.first.losses_collision, 0u);
  EXPECT_GT(batched.first.losses_burst, 0u);
  EXPECT_GT(batched.first.losses_random, 0u);
  EXPECT_GT(batched.first.losses_radio_off, 0u);
  EXPECT_GT(batched.first.deliveries, 0u);
}

TEST(Channel, DeliveryOrderAtCellBoundariesIsRegistrationOrder) {
  // Receivers sitting exactly on grid-cell edges and exactly at comm_range
  // (the squared-distance boundary band) must be served in registration
  // order with any combination of index/batching, so RNG consumers observe
  // the same draw sequence.
  std::vector<std::vector<NodeId>> orders;
  for (const bool spatial : {true, false}) {
    for (const bool batched : {true, false}) {
      auto cfg = ChannelFixture::make_default();
      cfg.use_spatial_index = spatial;
      cfg.batched_delivery = batched;
      ChannelFixture f(cfg);
      auto sender = f.channel->create_radio(1, {0, 0});
      // Registration order deliberately differs from id and spatial order;
      // cell side is comm_range (10), so x in {10, -10, 0} are cell edges
      // and (10, 0) is exactly at range.
      const std::vector<std::pair<NodeId, sim::Position>> layout = {
          {7, {10.0, 0.0}},  {3, {-10.0, 0.0}}, {9, {0.0, 10.0}},
          {2, {5.0, 5.0}},   {8, {0.0, -10.0}}, {4, {10.0, 0.0}},
          {6, {-5.0, 5.0}},  {5, {0.0, 0.0}},
      };
      std::vector<std::unique_ptr<Radio>> keep;
      std::vector<NodeId> order;
      for (const auto& [id, pos] : layout) {
        keep.push_back(f.channel->create_radio(id, pos));
        keep.back()->set_receive_handler(
            [&order, id = id](const Packet&) { order.push_back(id); });
      }
      sender->send(f.packet_from(1));
      f.sched.run();
      EXPECT_EQ(order.size(), layout.size());
      orders.push_back(std::move(order));
    }
  }
  for (std::size_t i = 1; i < orders.size(); ++i) {
    EXPECT_EQ(orders[i], orders[0]) << "config " << i;
  }
  // Registration order, by construction of the layout above.
  EXPECT_EQ(orders[0],
            (std::vector<NodeId>{7, 3, 9, 2, 8, 4, 6, 5}));
}

TEST(Channel, IdRebindsToNextRadioAfterUnregister) {
  ChannelFixture f;
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {5, 0});
  b.reset();
  EXPECT_TRUE(f.channel->neighbors_of(2).empty());
  EXPECT_TRUE(f.channel->neighbors_of(1).empty());
  auto b2 = f.channel->create_radio(2, {3, 0});
  EXPECT_EQ(f.channel->neighbors_of(2), (std::vector<NodeId>{1}));
  EXPECT_EQ(f.channel->neighbors_of(1), (std::vector<NodeId>{2}));
}

TEST(Channel, MessageTypeCountersTrack) {
  ChannelFixture f;
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {5, 0});
  (void)b;
  Packet p;
  p.src = 1;
  p.messages.push_back(TaskRequest{});
  p.messages.push_back(Sensing{});
  a->send(std::move(p));
  f.sched.run();
  EXPECT_EQ(a->stats().messages_sent[type_index(Message{TaskRequest{}})], 1u);
  EXPECT_EQ(a->stats().messages_sent[type_index(Message{Sensing{}})], 1u);
  EXPECT_EQ(a->stats().messages_sent[type_index(Message{Resign{}})], 0u);
}

TEST(Channel, AirtimeHandlerChargesBothDirections) {
  ChannelFixture f;
  auto a = f.channel->create_radio(1, {0, 0});
  auto b = f.channel->create_radio(2, {5, 0});
  double tx_s = 0, rx_s = 0;
  a->set_airtime_handler([&](double s, bool is_tx) {
    if (is_tx) tx_s += s;
  });
  b->set_airtime_handler([&](double s, bool is_tx) {
    if (!is_tx) rx_s += s;
  });
  a->send(f.packet_from(1));
  f.sched.run();
  EXPECT_GT(tx_s, 0.0);
  EXPECT_DOUBLE_EQ(tx_s, rx_s);
}

}  // namespace
}  // namespace enviromic::net
