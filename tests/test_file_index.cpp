#include <gtest/gtest.h>

#include "storage/file_index.h"

namespace enviromic::storage {
namespace {

using sim::Time;

ChunkMeta meta(net::EventId ev, std::uint64_t key, double start_s, double end_s,
               net::NodeId recorder, std::uint32_t bytes = 1000) {
  ChunkMeta m;
  m.event = ev;
  m.key = key;
  m.start = Time::seconds(start_s);
  m.end = Time::seconds(end_s);
  m.recorded_by = recorder;
  m.bytes = bytes;
  return m;
}

TEST(FileIndex, GroupsByEvent) {
  FileIndex idx;
  const net::EventId e1{1, 0}, e2{2, 0};
  idx.add(meta(e1, 1, 0, 1, 10), 10);
  idx.add(meta(e1, 2, 1, 2, 11), 11);
  idx.add(meta(e2, 3, 5, 6, 12), 12);
  EXPECT_EQ(idx.file_count(), 2u);
  EXPECT_EQ(idx.chunk_count(), 3u);
  EXPECT_EQ(idx.chunks_of(e1).size(), 2u);
  EXPECT_EQ(idx.chunks_of(e2).size(), 1u);
  EXPECT_TRUE(idx.chunks_of(net::EventId{9, 9}).empty());
}

TEST(FileIndex, ChunksSortedByStart) {
  FileIndex idx;
  const net::EventId e{1, 0};
  idx.add(meta(e, 1, 5, 6, 10), 10);
  idx.add(meta(e, 2, 1, 2, 11), 11);
  idx.add(meta(e, 3, 3, 4, 12), 12);
  const auto chunks = idx.chunks_of(e);
  EXPECT_EQ(chunks[0].key, 2u);
  EXPECT_EQ(chunks[1].key, 3u);
  EXPECT_EQ(chunks[2].key, 1u);
}

TEST(FileIndex, SummaryCoverageAndGaps) {
  FileIndex idx;
  const net::EventId e{1, 0};
  idx.add(meta(e, 1, 0, 2, 10), 10);
  idx.add(meta(e, 2, 3, 5, 11), 11);  // 1 s gap at [2, 3)
  const auto s = idx.summarize(e);
  EXPECT_EQ(s.chunk_count, 2u);
  EXPECT_EQ(s.total_bytes, 2000u);
  EXPECT_EQ(s.first_start, Time::zero());
  EXPECT_EQ(s.last_end, Time::seconds_i(5));
  EXPECT_EQ(s.covered, Time::seconds_i(4));
  EXPECT_EQ(s.redundant, Time::zero());
  ASSERT_EQ(s.gaps.size(), 1u);
  EXPECT_EQ(s.gaps[0].start, Time::seconds_i(2));
  EXPECT_EQ(s.gaps[0].end, Time::seconds_i(3));
}

TEST(FileIndex, SummaryRedundancy) {
  FileIndex idx;
  const net::EventId e{1, 0};
  idx.add(meta(e, 1, 0, 4, 10), 10);
  idx.add(meta(e, 2, 2, 6, 11), 11);  // 2 s double-covered
  const auto s = idx.summarize(e);
  EXPECT_EQ(s.covered, Time::seconds_i(6));
  EXPECT_EQ(s.redundant, Time::seconds_i(2));
}

TEST(FileIndex, RecordersListedDistinctInOrder) {
  FileIndex idx;
  const net::EventId e{1, 0};
  idx.add(meta(e, 1, 0, 1, 20), 20);
  idx.add(meta(e, 2, 1, 2, 21), 21);
  idx.add(meta(e, 3, 2, 3, 20), 20);
  const auto s = idx.summarize(e);
  EXPECT_EQ(s.recorders, (std::vector<net::NodeId>{20, 21}));
}

TEST(FileIndex, PlacementCountsStorageLocations) {
  FileIndex idx;
  const net::EventId e{1, 0};
  idx.add(meta(e, 1, 0, 1, 10), /*stored_at=*/30);
  idx.add(meta(e, 2, 1, 2, 10), 30);
  idx.add(meta(e, 3, 2, 3, 10), 31);
  const auto p = idx.placement_of(e);
  EXPECT_EQ(p.at(30), 2u);
  EXPECT_EQ(p.at(31), 1u);
}

TEST(FileIndex, DeduplicateRemovesMigrationCopies) {
  FileIndex idx;
  const net::EventId e{1, 0};
  idx.add(meta(e, 1, 0, 1, 10), 30);
  idx.add(meta(e, 1, 0, 1, 10), 31);  // same chunk stored twice
  idx.add(meta(e, 2, 1, 2, 10), 32);
  EXPECT_EQ(idx.deduplicate(), 1u);
  EXPECT_EQ(idx.chunk_count(), 2u);
  const auto s = idx.summarize(e);
  EXPECT_EQ(s.covered, Time::seconds_i(2));
  EXPECT_EQ(s.redundant, Time::zero());
}

TEST(FileIndex, SummaryOfUnknownEventEmpty) {
  FileIndex idx;
  const auto s = idx.summarize(net::EventId{5, 5});
  EXPECT_EQ(s.chunk_count, 0u);
  EXPECT_EQ(s.total_bytes, 0u);
}

TEST(FileIndex, EventsEnumeration) {
  FileIndex idx;
  idx.add(meta(net::EventId{2, 1}, 1, 0, 1, 10), 10);
  idx.add(meta(net::EventId{1, 1}, 2, 0, 1, 10), 10);
  const auto events = idx.events();
  EXPECT_EQ(events.size(), 2u);
  EXPECT_LT(events[0], events[1]);  // map ordering
}

}  // namespace
}  // namespace enviromic::storage
