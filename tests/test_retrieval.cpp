// Data retrieval (paper §II-C): single-hop queries, flooded queries,
// time-range filtering, deduplication of repeated queries.
#include <gtest/gtest.h>

#include "world_fixture.h"

namespace enviromic::core {
namespace {

using testing::WorldBuilder;

storage::Chunk chunk_at(Node& n, double start_s, double end_s) {
  storage::Chunk c;
  c.meta.key = n.store().next_key(n.id());
  c.meta.bytes = 500;
  c.meta.recorded_by = n.id();
  c.meta.event = net::EventId{n.id(), 1};
  c.meta.start = sim::Time::seconds(start_s);
  c.meta.end = sim::Time::seconds(end_s);
  return c;
}

std::unique_ptr<World> line_world(std::uint64_t seed, int n = 4,
                                  double spacing = 3.0) {
  WorldBuilder b;
  b.mode(Mode::kCooperativeOnly).seed(seed).lossless_radio();
  auto world = std::make_unique<World>(b.cfg);
  for (int i = 0; i < n; ++i)
    world->add_node({spacing * static_cast<double>(i), 0.0});
  return world;
}

TEST(Retrieval, SingleHopReturnsNeighborsChunks) {
  auto world = line_world(111);
  auto& sink = world->node(0);
  auto& nbr = world->node(1);    // 3 ft: in range
  auto& far = world->node(3);    // 9 ft: out of range
  nbr.store().append(chunk_at(nbr, 1, 2));
  nbr.store().append(chunk_at(nbr, 3, 4));
  far.store().append(chunk_at(far, 1, 2));
  world->start();
  std::vector<net::QueryReply> replies;
  sink.retrieval().start_query(sim::Time::zero(), sim::Time::seconds_i(100), 1,
                               [&](const net::QueryReply& r) {
                                 replies.push_back(r);
                               });
  world->run_for(sim::Time::seconds_i(5));
  EXPECT_EQ(replies.size(), 2u);
  for (const auto& r : replies) EXPECT_EQ(r.sender, nbr.id());
}

TEST(Retrieval, SinkIncludesItsOwnChunks) {
  auto world = line_world(112);
  auto& sink = world->node(0);
  sink.store().append(chunk_at(sink, 1, 2));
  world->start();
  int replies = 0;
  sink.retrieval().start_query(sim::Time::zero(), sim::Time::seconds_i(10), 1,
                               [&](const net::QueryReply&) { ++replies; });
  world->run_for(sim::Time::seconds_i(5));
  EXPECT_EQ(replies, 1);
}

TEST(Retrieval, TimeRangeFilters) {
  auto world = line_world(113);
  auto& sink = world->node(0);
  auto& nbr = world->node(1);
  nbr.store().append(chunk_at(nbr, 1, 2));
  nbr.store().append(chunk_at(nbr, 10, 12));
  nbr.store().append(chunk_at(nbr, 20, 22));
  world->start();
  std::vector<net::QueryReply> replies;
  sink.retrieval().start_query(sim::Time::seconds_i(9), sim::Time::seconds_i(13),
                               1, [&](const net::QueryReply& r) {
                                 replies.push_back(r);
                               });
  world->run_for(sim::Time::seconds_i(5));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].start, sim::Time::seconds_i(10));
}

TEST(Retrieval, OverlapAtRangeEdgeIncluded) {
  auto world = line_world(114);
  auto& sink = world->node(0);
  auto& nbr = world->node(1);
  nbr.store().append(chunk_at(nbr, 1, 5));  // straddles the query start
  world->start();
  int replies = 0;
  sink.retrieval().start_query(sim::Time::seconds_i(4), sim::Time::seconds_i(10),
                               1, [&](const net::QueryReply&) { ++replies; });
  world->run_for(sim::Time::seconds_i(5));
  EXPECT_EQ(replies, 1);
}

TEST(Retrieval, FloodedQueryReachesFurtherNodes) {
  // Replies stay single-hop (the mule walks), but a flooded query makes
  // distant nodes serve it; verify via their service counters.
  auto world = line_world(115, 5);
  for (std::size_t i = 1; i < world->node_count(); ++i) {
    auto& n = world->node(i);
    n.store().append(chunk_at(n, 1, 2));
  }
  world->start();
  world->node(0).retrieval().start_query(sim::Time::zero(),
                                         sim::Time::seconds_i(10), 4,
                                         [](const net::QueryReply&) {});
  world->run_for(sim::Time::seconds_i(10));
  int served = 0, forwarded = 0;
  for (std::size_t i = 0; i < world->node_count(); ++i) {
    served += static_cast<int>(world->node(i).retrieval().stats().queries_served);
    forwarded +=
        static_cast<int>(world->node(i).retrieval().stats().queries_forwarded);
  }
  EXPECT_GE(served, 4);     // beyond single-hop reach
  EXPECT_GE(forwarded, 2);  // the flood actually propagated
}

TEST(Retrieval, RepeatedFloodServedOnce) {
  auto world = line_world(116, 3);
  auto& nbr = world->node(1);
  nbr.store().append(chunk_at(nbr, 1, 2));
  world->start();
  std::vector<net::QueryReply> replies;
  world->node(0).retrieval().start_query(
      sim::Time::zero(), sim::Time::seconds_i(10), 3,
      [&](const net::QueryReply& r) { replies.push_back(r); });
  world->run_for(sim::Time::seconds_i(10));
  // The flood re-broadcasts reach nbr multiple times; it must reply once.
  EXPECT_EQ(replies.size(), 1u);
}

TEST(Retrieval, ConcurrentQueriesDeliverIndependently) {
  // The retrieval plane keys replies by query id, so overlapping queries
  // from one sink no longer cannibalize each other: each handler sees
  // exactly the replies matching its own window. (The seed's single
  // active-query slot dropped the first query's replies on the floor.)
  auto world = line_world(117);
  auto& sink = world->node(0);
  auto& nbr = world->node(1);
  nbr.store().append(chunk_at(nbr, 1, 2));
  world->start();
  int first = 0, second = 0;
  sink.retrieval().start_query(sim::Time::zero(), sim::Time::seconds_i(10), 1,
                               [&](const net::QueryReply&) { ++first; });
  // Immediately issue a second query (before replies to the first land).
  sink.retrieval().start_query(sim::Time::seconds_i(50),
                               sim::Time::seconds_i(60), 1,
                               [&](const net::QueryReply&) { ++second; });
  world->run_for(sim::Time::seconds_i(5));
  EXPECT_EQ(first, 1);   // the chunk matches the first window
  EXPECT_EQ(second, 0);  // nothing matches the second window
}

TEST(Retrieval, ParseResourcePaths) {
  const auto all = parse_resource("/chunks/all");
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(all->kind, ResourceSelector::Kind::kTime);
  EXPECT_TRUE(all->from.is_zero());
  EXPECT_EQ(all->to, sim::Time::max());

  const auto window = parse_resource("/chunks/time/5-12.5");
  ASSERT_TRUE(window.has_value());
  EXPECT_EQ(window->from, sim::Time::seconds(5.0));
  EXPECT_EQ(window->to, sim::Time::seconds(12.5));

  const auto src = parse_resource("/chunks/source/7");
  ASSERT_TRUE(src.has_value());
  EXPECT_EQ(src->kind, ResourceSelector::Kind::kSource);
  EXPECT_EQ(src->source, 7u);

  // path() round-trips through the parser.
  EXPECT_EQ(parse_resource(all->path())->path(), all->path());
  EXPECT_EQ(parse_resource(src->path())->path(), src->path());

  for (const char* bad :
       {"", "nope", "/chunks", "/chunks/", "/chunks/time/", "/chunks/time/3",
        "/chunks/time/9-3", "/chunks/time/4-4", "/chunks/time/x-4",
        "/chunks/source/", "/chunks/source/abc", "/chunks/source/-1"}) {
    EXPECT_FALSE(parse_resource(bad).has_value()) << bad;
  }
}

TEST(Retrieval, SelectorMatchesByKind) {
  storage::ChunkMeta m;
  m.recorded_by = 4;
  m.start = sim::Time::seconds_i(10);
  m.end = sim::Time::seconds_i(12);
  EXPECT_TRUE(ResourceSelector::all().matches(m));
  EXPECT_TRUE(ResourceSelector::time_range(sim::Time::seconds_i(11),
                                           sim::Time::seconds_i(20))
                  .matches(m));
  EXPECT_FALSE(ResourceSelector::time_range(sim::Time::seconds_i(12),
                                            sim::Time::seconds_i(20))
                   .matches(m));
  EXPECT_TRUE(ResourceSelector::by_source(4).matches(m));
  EXPECT_FALSE(ResourceSelector::by_source(5).matches(m));
}

TEST(Retrieval, DecodeCollectedCountsDistinctFragmentsOnce) {
  // Two arrivals of the same (group, index) fragment are one consumed
  // fragment — the seed counted every duplicate, overstating drain work.
  auto frag = [](std::uint8_t index) {
    CollectedChunk c;
    c.meta.key = 9000 + index;
    c.meta.ec_group = 42;
    c.meta.ec_index = index;
    c.meta.ec_k = 2;
    c.meta.ec_n = 3;
    c.meta.ec_orig_bytes = 100;
    c.meta.bytes = 50;
    return c;
  };
  std::vector<CollectedChunk> got = {frag(0), frag(0), frag(1)};
  DecodeDrainStats st;
  decode_collected(got, &st);
  EXPECT_EQ(st.fragments_consumed, 2u);
  EXPECT_EQ(st.groups_seen, 1u);
}

TEST(Retrieval, HarvestSurvivesBrownoutMidDrain) {
  // A radio brownout in the middle of a direct (single-hop mule) harvest
  // must not destroy data: the seed popped each chunk from the store before
  // the send, so every send attempted while the radio was dark vanished.
  // The fix pops only after a successful send and retries otherwise.
  auto world = line_world(301, 2);
  auto& sink = world->node(0);
  auto& srv = world->node(1);
  constexpr int kChunks = 30;
  for (int i = 0; i < kChunks; ++i)
    srv.store().append(chunk_at(srv, i * 10.0, i * 10.0 + 2.0));
  world->start();
  DrainOptions opts;
  opts.hops = 1;
  opts.pipelined = false;
  sink.retrieval().start_drain(opts);
  // Let the harvest get going, then brown the server out mid-stream.
  world->run_for(sim::Time::millis(60));
  srv.brownout(sim::Time::seconds_i(3));
  world->run_for(sim::Time::seconds_i(40));
  // Conservation: every chunk is at the sink or still in the store...
  EXPECT_EQ(sink.retrieval().collected_keys().size() +
                srv.store().chunk_count(),
            static_cast<std::size_t>(kChunks));
  // ...and the drain actually resumed once the radio came back.
  EXPECT_EQ(sink.retrieval().collected_keys().size(),
            static_cast<std::size_t>(kChunks));
}

TEST(Retrieval, TwoSinksDrainConcurrently) {
  // sinkA -- server -- sinkB: both sinks harvest at once. The seed's single
  // harvesting_ flag made the server ignore every sink after the first, so
  // the second drain starved until the first one's 10 s timeout. Per-sink
  // serve sessions interleave them instead.
  auto world = line_world(302, 3);
  auto& a = world->node(0);
  auto& srv = world->node(1);
  auto& b = world->node(2);
  constexpr int kChunks = 12;
  for (int i = 0; i < kChunks; ++i)
    srv.store().append(chunk_at(srv, i * 10.0, i * 10.0 + 2.0));
  world->start();
  DrainOptions opts;
  opts.hops = 1;
  opts.pipelined = false;
  a.retrieval().start_drain(opts);
  b.retrieval().start_drain(opts);
  world->run_for(sim::Time::seconds_i(8));
  const auto& ka = a.retrieval().collected_keys();
  const auto& kb = b.retrieval().collected_keys();
  // Both sinks made progress well before the first drain wound down.
  EXPECT_FALSE(ka.empty());
  EXPECT_FALSE(kb.empty());
  // Between them they drained the whole store, and overlap resolution kept
  // any chunk from being physically uploaded twice.
  EXPECT_EQ(ka.size() + kb.size(), static_cast<std::size_t>(kChunks));
  EXPECT_EQ(srv.store().chunk_count(), 0u);
  for (const auto key : ka) EXPECT_EQ(kb.count(key), 0u) << key;
}

TEST(Retrieval, QuerySoftStateBounded) {
  // A query storm cannot grow the seen-set/tree-parent table without bound:
  // entries age out by TTL and a hard cap (4x retrieval_max_queries) evicts
  // the oldest unprotected entries.
  auto world = line_world(303, 2);
  world->start();
  auto& n = world->node(1);
  net::QueryRequest q;
  q.sink = 77;
  q.hops_left = 1;
  q.from = sim::Time::zero();
  q.to = sim::Time::max();
  for (std::uint32_t id = 1; id <= 1000; ++id) {
    q.query_id = id;
    n.retrieval().handle(q, /*from=*/77);
  }
  EXPECT_LE(n.retrieval().query_state_size(),
            4 * n.cfg().retrieval_max_queries);
}

TEST(Retrieval, RepeatedHarvestFloodsCountOneServe) {
  // Re-flood rounds of the same sink's drain refresh the serve session;
  // they are one served query, not one per round. (The seed's seen_ set
  // was also unbounded — QuerySoftStateBounded covers the cap.)
  auto world = line_world(304, 2);
  auto& srv = world->node(1);
  srv.store().append(chunk_at(srv, 1, 2));
  world->start();
  net::QueryRequest q;
  q.sink = 77;
  q.hops_left = 1;
  q.from = sim::Time::zero();
  q.to = sim::Time::max();
  q.harvest = true;
  q.query_id = 9;
  srv.retrieval().handle(q, 77);
  q.query_id = 10;  // next flood round of the same drain
  srv.retrieval().handle(q, 77);
  EXPECT_EQ(srv.retrieval().stats().queries_served, 1u);
  EXPECT_EQ(srv.retrieval().active_serves(), 1u);
}

}  // namespace
}  // namespace enviromic::core
