// Data retrieval (paper §II-C): single-hop queries, flooded queries,
// time-range filtering, deduplication of repeated queries.
#include <gtest/gtest.h>

#include "world_fixture.h"

namespace enviromic::core {
namespace {

using testing::WorldBuilder;

storage::Chunk chunk_at(Node& n, double start_s, double end_s) {
  storage::Chunk c;
  c.meta.key = n.store().next_key(n.id());
  c.meta.bytes = 500;
  c.meta.recorded_by = n.id();
  c.meta.event = net::EventId{n.id(), 1};
  c.meta.start = sim::Time::seconds(start_s);
  c.meta.end = sim::Time::seconds(end_s);
  return c;
}

std::unique_ptr<World> line_world(std::uint64_t seed, int n = 4,
                                  double spacing = 3.0) {
  WorldBuilder b;
  b.mode(Mode::kCooperativeOnly).seed(seed).lossless_radio();
  auto world = std::make_unique<World>(b.cfg);
  for (int i = 0; i < n; ++i)
    world->add_node({spacing * static_cast<double>(i), 0.0});
  return world;
}

TEST(Retrieval, SingleHopReturnsNeighborsChunks) {
  auto world = line_world(111);
  auto& sink = world->node(0);
  auto& nbr = world->node(1);    // 3 ft: in range
  auto& far = world->node(3);    // 9 ft: out of range
  nbr.store().append(chunk_at(nbr, 1, 2));
  nbr.store().append(chunk_at(nbr, 3, 4));
  far.store().append(chunk_at(far, 1, 2));
  world->start();
  std::vector<net::QueryReply> replies;
  sink.retrieval().start_query(sim::Time::zero(), sim::Time::seconds_i(100), 1,
                               [&](const net::QueryReply& r) {
                                 replies.push_back(r);
                               });
  world->run_for(sim::Time::seconds_i(5));
  EXPECT_EQ(replies.size(), 2u);
  for (const auto& r : replies) EXPECT_EQ(r.sender, nbr.id());
}

TEST(Retrieval, SinkIncludesItsOwnChunks) {
  auto world = line_world(112);
  auto& sink = world->node(0);
  sink.store().append(chunk_at(sink, 1, 2));
  world->start();
  int replies = 0;
  sink.retrieval().start_query(sim::Time::zero(), sim::Time::seconds_i(10), 1,
                               [&](const net::QueryReply&) { ++replies; });
  world->run_for(sim::Time::seconds_i(5));
  EXPECT_EQ(replies, 1);
}

TEST(Retrieval, TimeRangeFilters) {
  auto world = line_world(113);
  auto& sink = world->node(0);
  auto& nbr = world->node(1);
  nbr.store().append(chunk_at(nbr, 1, 2));
  nbr.store().append(chunk_at(nbr, 10, 12));
  nbr.store().append(chunk_at(nbr, 20, 22));
  world->start();
  std::vector<net::QueryReply> replies;
  sink.retrieval().start_query(sim::Time::seconds_i(9), sim::Time::seconds_i(13),
                               1, [&](const net::QueryReply& r) {
                                 replies.push_back(r);
                               });
  world->run_for(sim::Time::seconds_i(5));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].start, sim::Time::seconds_i(10));
}

TEST(Retrieval, OverlapAtRangeEdgeIncluded) {
  auto world = line_world(114);
  auto& sink = world->node(0);
  auto& nbr = world->node(1);
  nbr.store().append(chunk_at(nbr, 1, 5));  // straddles the query start
  world->start();
  int replies = 0;
  sink.retrieval().start_query(sim::Time::seconds_i(4), sim::Time::seconds_i(10),
                               1, [&](const net::QueryReply&) { ++replies; });
  world->run_for(sim::Time::seconds_i(5));
  EXPECT_EQ(replies, 1);
}

TEST(Retrieval, FloodedQueryReachesFurtherNodes) {
  // Replies stay single-hop (the mule walks), but a flooded query makes
  // distant nodes serve it; verify via their service counters.
  auto world = line_world(115, 5);
  for (std::size_t i = 1; i < world->node_count(); ++i) {
    auto& n = world->node(i);
    n.store().append(chunk_at(n, 1, 2));
  }
  world->start();
  world->node(0).retrieval().start_query(sim::Time::zero(),
                                         sim::Time::seconds_i(10), 4,
                                         [](const net::QueryReply&) {});
  world->run_for(sim::Time::seconds_i(10));
  int served = 0, forwarded = 0;
  for (std::size_t i = 0; i < world->node_count(); ++i) {
    served += static_cast<int>(world->node(i).retrieval().stats().queries_served);
    forwarded +=
        static_cast<int>(world->node(i).retrieval().stats().queries_forwarded);
  }
  EXPECT_GE(served, 4);     // beyond single-hop reach
  EXPECT_GE(forwarded, 2);  // the flood actually propagated
}

TEST(Retrieval, RepeatedFloodServedOnce) {
  auto world = line_world(116, 3);
  auto& nbr = world->node(1);
  nbr.store().append(chunk_at(nbr, 1, 2));
  world->start();
  std::vector<net::QueryReply> replies;
  world->node(0).retrieval().start_query(
      sim::Time::zero(), sim::Time::seconds_i(10), 3,
      [&](const net::QueryReply& r) { replies.push_back(r); });
  world->run_for(sim::Time::seconds_i(10));
  // The flood re-broadcasts reach nbr multiple times; it must reply once.
  EXPECT_EQ(replies.size(), 1u);
}

TEST(Retrieval, StaleRepliesIgnoredAfterNewQuery) {
  auto world = line_world(117);
  auto& sink = world->node(0);
  auto& nbr = world->node(1);
  nbr.store().append(chunk_at(nbr, 1, 2));
  world->start();
  int first = 0, second = 0;
  sink.retrieval().start_query(sim::Time::zero(), sim::Time::seconds_i(10), 1,
                               [&](const net::QueryReply&) { ++first; });
  // Immediately supersede with a new query (before replies land).
  sink.retrieval().start_query(sim::Time::seconds_i(50),
                               sim::Time::seconds_i(60), 1,
                               [&](const net::QueryReply&) { ++second; });
  world->run_for(sim::Time::seconds_i(5));
  EXPECT_EQ(second, 0);  // nothing matches the second window
  // Replies to the first (stale) query are not delivered to its handler.
  EXPECT_EQ(first, 0);
}

}  // namespace
}  // namespace enviromic::core
