// Group management: leader election, SENSING soft state, hand-off,
// watchdog re-election, duplicate-leader convergence (paper §II-A.1).
#include <gtest/gtest.h>

#include "world_fixture.h"

namespace enviromic::core {
namespace {

using testing::WorldBuilder;
using testing::add_event;
using testing::leader_count;
using testing::sum_nodes;

TEST(Group, ExactlyOneLeaderDuringStaticEvent) {
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(21)
                   .perfect_detection()
                   .lossless_radio()
                   .grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 25.0);
  world->start();
  world->run_until(sim::Time::seconds_i(10));
  EXPECT_EQ(leader_count(*world), 1);
  world->run_until(sim::Time::seconds_i(20));
  EXPECT_EQ(leader_count(*world), 1);
}

TEST(Group, LeaderIsAmongTheHearers) {
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(22)
                   .perfect_detection()
                   .lossless_radio()
                   .grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 20.0);
  world->start();
  world->run_until(sim::Time::seconds_i(10));
  for (std::size_t i = 0; i < world->node_count(); ++i) {
    auto& n = world->node(i);
    if (n.group().is_leader()) {
      EXPECT_LT(sim::distance(n.position(), {3, 3}), 2.0);
    }
  }
}

TEST(Group, ElectionWithinOneSecond) {
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(23)
                   .perfect_detection()
                   .lossless_radio()
                   .grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 20.0);
  world->start();
  // Paper: election + group creation + first assignment take up to ~1 s.
  world->run_until(sim::Time::seconds(6.5));
  EXPECT_EQ(leader_count(*world), 1);
}

TEST(Group, NoLeadersWithoutEvents) {
  auto world = WorldBuilder{}.mode(Mode::kCooperativeOnly).seed(24).grid(4, 4);
  world->start();
  world->run_until(sim::Time::seconds_i(30));
  EXPECT_EQ(leader_count(*world), 0);
  EXPECT_EQ(sum_nodes(*world, [](Node& n) {
              return n.group().stats().elections_won;
            }),
            0u);
}

TEST(Group, LeaderResignsWhenEventEnds) {
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(25)
                   .perfect_detection()
                   .lossless_radio()
                   .grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 10.0);
  world->start();
  world->run_until(sim::Time::seconds_i(15));
  EXPECT_EQ(leader_count(*world), 0);
  EXPECT_GE(sum_nodes(*world,
                      [](Node& n) { return n.group().stats().resigns_sent; }),
            1u);
}

TEST(Group, SensingHeartbeatsFlowWhileHearing) {
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(26)
                   .perfect_detection()
                   .lossless_radio()
                   .grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 15.0);
  world->start();
  world->run_until(sim::Time::seconds_i(15));
  const auto sensings =
      sum_nodes(*world, [](Node& n) { return n.group().stats().sensings_sent; });
  // ~4 hearers x 10 s x 2 Hz, minus recording blackouts.
  EXPECT_GT(sensings, 30u);
}

TEST(Group, MembersSoftStateBuildsAtLeader) {
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(27)
                   .perfect_detection()
                   .lossless_radio()
                   .grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 25.0);
  world->start();
  world->run_until(sim::Time::seconds_i(12));
  for (std::size_t i = 0; i < world->node_count(); ++i) {
    auto& n = world->node(i);
    if (n.group().is_leader()) {
      // 4 hearers; the leader should know of members among the other 3
      // (some may be mid-recording, which keeps them busy but tracked).
      EXPECT_GE(n.group().fresh_members().size(), 1u);
    }
  }
}

TEST(Group, HandoffPreservesEventIdAcrossLeaders) {
  // A source moving across the grid forces leader hand-offs; the file id
  // minted by the first leader should survive via RESIGN (paper Fig 5).
  WorldBuilder b;
  b.mode(Mode::kCooperativeOnly).seed(28).perfect_detection().lossless_radio();
  auto world = b.grid(8, 2);
  core::MobileEventConfig ev;
  ev.from = {-2, 1};
  ev.to = {16, 1};
  ev.speed = 2.0;
  ev.start = sim::Time::seconds_i(3);
  ev.duration = sim::Time::seconds_i(8);
  ev.audible_range = 2.2;
  core::add_mobile_event(*world, ev);
  world->start();
  world->run_until(sim::Time::seconds_i(16));

  const auto files = world->drain_all();
  // Gather coordinated (valid-id) files; the dominant one should span most
  // of the event even though several nodes led at different times.
  sim::Time best = sim::Time::zero();
  for (const auto& event : files.events()) {
    if (!event.valid()) continue;
    const auto s = files.summarize(event);
    best = std::max(best, s.covered);
  }
  EXPECT_GT(best.to_seconds(), 4.0);
  const auto handoffs = sum_nodes(
      *world, [](Node& n) { return n.group().stats().handoffs_won; });
  EXPECT_GE(handoffs, 1u);
}

TEST(Group, WatchdogRecoversFromLostResign) {
  // Force the leader's RESIGN to vanish by making the radio very lossy just
  // for a stretch; members should re-elect after the silence timeout.
  WorldBuilder b;
  b.mode(Mode::kCooperativeOnly).seed(29).perfect_detection();
  b.cfg.channel.loss_probability = 0.55;  // rough RF
  auto world = b.grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 60.0);
  world->start();
  world->run_until(sim::Time::seconds_i(60));
  // Despite heavy loss the event is still mostly covered thanks to
  // re-elections/watchdog.
  const auto snap = world->snapshot();
  EXPECT_LT(snap.miss_ratio, 0.5);
}

TEST(Group, TwoSimultaneousEventsGetTwoLeaders) {
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(30)
                   .perfect_detection()
                   .lossless_radio()
                   .grid(8, 6);
  add_event(*world, {3, 3}, 5.0, 25.0);
  add_event(*world, {11, 7}, 5.0, 25.0);
  world->start();
  world->run_until(sim::Time::seconds_i(15));
  EXPECT_EQ(leader_count(*world), 2);
}

TEST(Group, DuplicateLeadersMostlyConvergeUnderLoss) {
  // With loss, two hearers can both win the election. The paper does not
  // guarantee elimination of duplicates ("multiple leaders may be elected
  // ... which will produce redundant recording"); the convergence rule
  // (lower id keeps the group) should resolve most cases, and even
  // unresolved ones must keep redundancy bounded.
  int multi_leader_runs = 0;
  for (std::uint64_t seed = 40; seed < 48; ++seed) {
    WorldBuilder b;
    b.mode(Mode::kCooperativeOnly).seed(seed).perfect_detection();
    b.cfg.channel.loss_probability = 0.25;
    auto world = b.grid(4, 4);
    add_event(*world, {3, 3}, 5.0, 40.0);
    world->start();
    world->run_until(sim::Time::seconds_i(35));
    if (leader_count(*world) > 1) ++multi_leader_runs;
    const auto snap = world->snapshot();
    EXPECT_LT(snap.redundancy_ratio, 0.6) << "seed " << seed;
    EXPECT_LT(snap.miss_ratio, 0.4) << "seed " << seed;
  }
  EXPECT_LE(multi_leader_runs, 3);
}

}  // namespace
}  // namespace enviromic::core
