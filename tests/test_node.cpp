// Node-level wiring: message dispatch, recording/radio/energy interplay,
// processing delays, mode gating.
#include <gtest/gtest.h>

#include "world_fixture.h"

namespace enviromic::core {
namespace {

using testing::WorldBuilder;
using testing::add_event;

TEST(Node, RecordingTogglesRadioAndEnergyState) {
  auto world = WorldBuilder{}.mode(Mode::kCooperativeOnly).seed(301).grid(2, 2);
  world->start();
  auto& n = world->node(0);
  EXPECT_TRUE(n.radio().is_on());
  n.set_recording(true);
  EXPECT_TRUE(n.is_recording());
  EXPECT_FALSE(n.radio().is_on());
  n.set_recording(false);
  EXPECT_FALSE(n.is_recording());
  EXPECT_TRUE(n.radio().is_on());
}

TEST(Node, ProcDelayWithinConfiguredBounds) {
  auto world = WorldBuilder{}.mode(Mode::kCooperativeOnly).seed(302).grid(2, 2);
  world->start();
  auto& n = world->node(0);
  for (int i = 0; i < 200; ++i) {
    const auto d = n.proc_delay();
    EXPECT_GE(d, n.cfg().control_proc_min);
    EXPECT_LE(d, n.cfg().control_proc_max);
  }
}

TEST(Node, UncoordinatedModeSendsNothingEver) {
  auto world = WorldBuilder{}
                   .mode(Mode::kUncoordinated)
                   .seed(303)
                   .perfect_detection()
                   .grid(4, 4);
  add_event(*world, {3, 3}, 3.0, 10.0);
  world->start();
  world->run_until(sim::Time::seconds_i(30));
  for (std::size_t i = 0; i < world->node_count(); ++i) {
    EXPECT_EQ(world->node(i).radio().stats().packets_sent, 0u);
  }
}

TEST(Node, CooperativeOnlyNeverSendsTransferTraffic) {
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(304)
                   .perfect_detection()
                   .grid(4, 4);
  add_event(*world, {3, 3}, 3.0, 15.0);
  world->start();
  world->run_until(sim::Time::seconds_i(30));
  const auto snap = world->snapshot();
  EXPECT_EQ(snap.transfer_messages, 0u);
  EXPECT_GT(snap.control_messages, 0u);
}

TEST(Node, SensingSoftStateCarriesTtl) {
  // The SENSING message doubles as balancing soft state (paper §II-B reuses
  // group-management broadcasts).
  auto world = WorldBuilder{}
                   .mode(Mode::kFull)
                   .seed(305)
                   .perfect_detection()
                   .lossless_radio()
                   .grid(4, 4);
  add_event(*world, {3, 3}, 3.0, 15.0);
  world->start();
  world->run_until(sim::Time::seconds_i(10));
  // Hearers have exchanged SENSING; their group member tables carry TTLs.
  int with_ttl = 0;
  for (std::size_t i = 0; i < world->node_count(); ++i) {
    for (const auto& [id, info] : world->node(i).group().fresh_members()) {
      if (info.ttl_s > 0.0) ++with_ttl;
    }
  }
  EXPECT_GT(with_ttl, 0);
}

TEST(Node, EnergyDrainsOverTime) {
  auto world = WorldBuilder{}.mode(Mode::kCooperativeOnly).seed(306).grid(2, 2);
  world->start();
  world->run_until(sim::Time::seconds_i(600));
  auto& n = world->node(0);
  n.energy().advance(world->sched().now());
  EXPECT_GT(n.energy().battery().consumed_joules(), 0.5);
  EXPECT_FALSE(n.energy().battery().depleted());
}

TEST(Node, FailedNodeIgnoresSetRecording) {
  auto world = WorldBuilder{}.mode(Mode::kCooperativeOnly).seed(307).grid(2, 2);
  world->start();
  auto& n = world->node(0);
  n.fail();
  n.set_recording(true);
  EXPECT_FALSE(n.is_recording());
  EXPECT_FALSE(n.radio().is_on());
}

TEST(World, ByIdFindsNodes) {
  auto world = WorldBuilder{}.mode(Mode::kCooperativeOnly).seed(308).grid(3, 2);
  EXPECT_NE(world->by_id(1), nullptr);
  EXPECT_NE(world->by_id(6), nullptr);
  EXPECT_EQ(world->by_id(7), nullptr);
  EXPECT_EQ(world->by_id(1)->id(), 1u);
}

TEST(World, SnapshotBeforeAnyEventIsClean) {
  auto world = WorldBuilder{}.mode(Mode::kFull).seed(309).grid(3, 2);
  world->start();
  world->run_until(sim::Time::seconds_i(30));
  const auto snap = world->snapshot();
  EXPECT_EQ(snap.hearable, sim::Time::zero());
  EXPECT_EQ(snap.miss_ratio, 0.0);
  EXPECT_EQ(snap.stored_total, sim::Time::zero());
}

TEST(World, DrainAllEmptyWorld) {
  auto world = WorldBuilder{}.mode(Mode::kFull).seed(310).grid(2, 2);
  world->start();
  const auto files = world->drain_all();
  EXPECT_EQ(files.file_count(), 0u);
  EXPECT_EQ(files.chunk_count(), 0u);
}

TEST(World, RunForAdvancesRelativeTime) {
  auto world = WorldBuilder{}.mode(Mode::kFull).seed(311).grid(2, 2);
  world->start();
  world->run_for(sim::Time::seconds_i(7));
  EXPECT_EQ(world->sched().now(), sim::Time::seconds_i(7));
  world->run_for(sim::Time::seconds_i(3));
  EXPECT_EQ(world->sched().now(), sim::Time::seconds_i(10));
}

TEST(Config, ModeNamesAreStable) {
  EXPECT_STREQ(mode_name(Mode::kUncoordinated), "uncoordinated");
  EXPECT_STREQ(mode_name(Mode::kCooperativeOnly), "cooperative-only");
  EXPECT_STREQ(mode_name(Mode::kFull), "full");
}

}  // namespace
}  // namespace enviromic::core
