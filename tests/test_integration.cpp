// Cross-module integration: full-stack scenarios exercising cooperative
// recording + balancing + retrieval together, and failure injection.
#include <gtest/gtest.h>

#include "world_fixture.h"

namespace enviromic::core {
namespace {

using testing::WorldBuilder;
using testing::add_event;
using testing::sum_nodes;

TEST(Integration, CooperativeBeatsNothingButBaselineBeatsNobody) {
  // Under tight storage, the three modes order exactly as the paper's
  // Fig 10: baseline worst, cooperative-only better, balancing best.
  double miss[3];
  const Mode modes[] = {Mode::kUncoordinated, Mode::kCooperativeOnly,
                        Mode::kFull};
  for (int k = 0; k < 3; ++k) {
    auto world = WorldBuilder{}
                     .mode(modes[k], 2.0)
                     .seed(141)
                     .flash_bytes(48 * 1024)  // ~18 s of audio per node
                     .grid(6, 4);
    // One source, four hearers, 180 s of event time in 12 bursts.
    for (int e = 0; e < 12; ++e) {
      add_event(*world, {5, 3}, 20.0 + e * 40.0, 35.0 + e * 40.0);
    }
    world->start();
    world->run_until(sim::Time::seconds_i(520));
    miss[k] = world->snapshot().miss_ratio;
  }
  EXPECT_GT(miss[0], miss[1]);
  EXPECT_GT(miss[1], miss[2]);
  EXPECT_GT(miss[0], 0.5);  // baseline loses most data
  EXPECT_LT(miss[2], 0.35);  // balancing rescues it
}

TEST(Integration, FilesAreContinuousAcrossRecorders) {
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(142)
                   .perfect_detection()
                   .lossless_radio()
                   .grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 25.0);
  world->start();
  world->run_until(sim::Time::seconds_i(30));
  const auto files = world->drain_all();
  // One coordinated file holding the whole event with multiple recorders
  // and no internal gaps.
  bool found = false;
  for (const auto& event : files.events()) {
    if (!event.valid()) continue;
    const auto s = files.summarize(event);
    if (s.covered.to_seconds() > 15.0) {
      found = true;
      EXPECT_GE(s.recorders.size(), 2u);
      // Hand-overs where the handshake exceeded D_ta leave only tiny gaps.
      sim::Time gap_total = sim::Time::zero();
      for (const auto& g : s.gaps) gap_total += g.end - g.start;
      EXPECT_LT(gap_total.to_seconds(), 0.2);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Integration, BalancingSpreadsStorageAcrossTheNetwork) {
  auto world = WorldBuilder{}
                   .mode(Mode::kFull, 2.0)
                   .seed(143)
                   .flash_bytes(64 * 1024)
                   .grid(6, 4);
  for (int e = 0; e < 14; ++e) {
    add_event(*world, {5, 3}, 15.0 + e * 35.0, 27.0 + e * 35.0);
  }
  world->start();
  world->run_until(sim::Time::seconds_i(520));
  // Count nodes holding data: with balancing it must exceed the 4 hearers.
  int holders = 0;
  for (std::size_t i = 0; i < world->node_count(); ++i) {
    if (world->node(i).store().chunk_count() > 0) ++holders;
  }
  EXPECT_GT(holders, 6);
  const auto pushed =
      sum_nodes(*world, [](Node& n) { return n.balancer().stats().bytes_pushed; });
  EXPECT_GT(pushed, 50000u);
}

TEST(Integration, RetrievalSeesMigratedChunks) {
  auto world = WorldBuilder{}
                   .mode(Mode::kFull, 2.0)
                   .seed(144)
                   .perfect_detection()
                   .lossless_radio()
                   .flash_bytes(32 * 1024)
                   .grid(4, 4);
  for (int e = 0; e < 6; ++e) {
    add_event(*world, {3, 3}, 10.0 + e * 50.0, 22.0 + e * 50.0);
  }
  world->start();
  world->run_until(sim::Time::seconds_i(320));
  const auto files = world->drain_all();
  // Chunks of some file live on nodes that never recorded them.
  bool migrated_found = false;
  for (const auto& event : files.events()) {
    for (const auto& [node, cnt] : files.placement_of(event)) {
      const auto chunks = files.chunks_of(event);
      for (const auto& c : chunks) {
        if (c.recorded_by != node) migrated_found = true;
      }
    }
  }
  EXPECT_TRUE(migrated_found);
}

TEST(Integration, CrashedNodeDataRecoverable) {
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(145)
                   .perfect_detection()
                   .lossless_radio()
                   .grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 20.0);
  world->start();
  world->run_until(sim::Time::seconds_i(25));
  // "Crash" every node and rebuild each store from flash + EEPROM.
  std::size_t live = 0, recovered = 0;
  for (std::size_t i = 0; i < world->node_count(); ++i) {
    auto& n = world->node(i);
    live += n.store().chunk_count();
    n.store().checkpoint();
    auto rebuilt = storage::ChunkStore::recover(n.flash(), n.eeprom());
    recovered += rebuilt.chunk_count();
  }
  EXPECT_GT(live, 0u);
  EXPECT_EQ(recovered, live);
}

TEST(Integration, DepletedBatteryNodeStopsBalancing) {
  WorldBuilder b;
  b.mode(Mode::kFull, 2.0).seed(146).lossless_radio();
  b.cfg.node_defaults.energy.battery_joules = 1e-6;  // dead on arrival
  auto world = b.grid(3, 3);
  auto& hot = world->node(0);
  for (int i = 0; i < 60; ++i) {
    storage::Chunk c;
    c.meta.key = hot.store().next_key(hot.id());
    c.meta.bytes = 2730;
    hot.store().append(std::move(c));
  }
  world->start();
  world->run_until(sim::Time::seconds_i(120));
  EXPECT_EQ(hot.balancer().stats().bytes_pushed, 0u);
}

TEST(Integration, ConcurrentEventsAtBothSourcesBothCovered) {
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(147)
                   .perfect_detection()
                   .lossless_radio()
                   .grid(8, 6);
  add_event(*world, {5, 3}, 10.0, 22.0);
  add_event(*world, {11, 7}, 12.0, 24.0);  // overlapping in time
  world->start();
  world->run_until(sim::Time::seconds_i(30));
  const auto snap = world->snapshot();
  EXPECT_EQ(snap.hearable, sim::Time::seconds_i(24));
  EXPECT_LT(snap.miss_ratio, 0.2);
}

TEST(Integration, DeterministicAcrossRuns) {
  auto run_once = [] {
    auto world = WorldBuilder{}
                     .mode(Mode::kFull, 2.0)
                     .seed(148)
                     .grid(4, 4);
    add_event(*world, {3, 3}, 5.0, 25.0);
    world->start();
    world->run_until(sim::Time::seconds_i(60));
    const auto snap = world->snapshot();
    return std::make_tuple(snap.miss_ratio, snap.redundancy_ratio,
                           snap.total_messages, world->sched().executed());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Integration, LongQuietPeriodsCostNoStorage) {
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(149)
                   .grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 10.0);
  world->start();
  world->run_until(sim::Time::seconds_i(600));  // 10 quiet minutes
  // Sound-activated recording: total stored is bounded by the event size.
  const auto used = sum_nodes(
      *world, [](Node& n) { return n.store().used_payload_bytes(); });
  EXPECT_LT(used, 3u * 5u * 2730u);
}

}  // namespace
}  // namespace enviromic::core
