// Deployment builders and event plans.
#include <gtest/gtest.h>

#include "world_fixture.h"

namespace enviromic::core {
namespace {

using testing::WorldBuilder;

TEST(Workload, GridPlacesRowMajorAtSpacing) {
  auto world = std::make_unique<World>(WorldBuilder{}.cfg);
  const auto pos = grid_deployment(*world, 3, 2, 2.0, {1.0, 1.0});
  ASSERT_EQ(pos.size(), 6u);
  EXPECT_EQ(world->node_count(), 6u);
  EXPECT_EQ(pos[0], (sim::Position{1, 1}));
  EXPECT_EQ(pos[1], (sim::Position{3, 1}));
  EXPECT_EQ(pos[3], (sim::Position{1, 3}));
  EXPECT_EQ(pos[5], (sim::Position{5, 3}));
  // Node ids are assigned in placement order starting at 1.
  EXPECT_EQ(world->node(0).id(), 1u);
  EXPECT_EQ(world->node(5).id(), 6u);
}

TEST(Workload, ForestRespectsMinSeparationAndBounds) {
  auto world = std::make_unique<World>(WorldBuilder{}.cfg);
  const auto pos =
      forest_deployment(*world, 25, 100.0, 100.0, 8.0, sim::Rng(3));
  ASSERT_EQ(pos.size(), 25u);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    EXPECT_GE(pos[i].x, 0.0);
    EXPECT_LE(pos[i].x, 100.0);
    EXPECT_GE(pos[i].y, 0.0);
    EXPECT_LE(pos[i].y, 100.0);
    for (std::size_t j = i + 1; j < pos.size(); ++j) {
      EXPECT_GE(sim::distance(pos[i], pos[j]), 8.0);
    }
  }
}

TEST(Workload, ForestIsDeterministicPerSeed) {
  auto w1 = std::make_unique<World>(WorldBuilder{}.cfg);
  auto w2 = std::make_unique<World>(WorldBuilder{}.cfg);
  const auto p1 = forest_deployment(*w1, 10, 50, 50, 5.0, sim::Rng(9));
  const auto p2 = forest_deployment(*w2, 10, 50, 50, 5.0, sim::Rng(9));
  EXPECT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) EXPECT_EQ(p1[i], p2[i]);
}

TEST(Workload, IndoorPlanMatchesPaperParameters) {
  auto world = std::make_unique<World>(WorldBuilder{}.cfg);
  IndoorEventPlanConfig cfg;
  cfg.horizon = sim::Time::seconds_i(4400);
  cfg.generators = {{5, 3}, {11, 7}};
  const auto plan = schedule_indoor_events(*world, cfg, sim::Rng(17));
  // Poisson(20 s) over 4400 s => ~220 events; durations U(3,7) => mean 5 s.
  EXPECT_NEAR(static_cast<double>(plan.events.size()), 220.0, 50.0);
  EXPECT_NEAR(plan.total_event_time.to_seconds(),
              5.0 * static_cast<double>(plan.events.size()),
              0.6 * static_cast<double>(plan.events.size()));
  for (const auto& e : plan.events) {
    EXPECT_GE(e.start, sim::Time::zero());
    EXPECT_LE(e.end, cfg.horizon);
    const double dur = (e.end - e.start).to_seconds();
    EXPECT_LE(dur, 7.01);
    const bool at_gen0 = e.at == cfg.generators[0];
    const bool at_gen1 = e.at == cfg.generators[1];
    EXPECT_TRUE(at_gen0 || at_gen1);
  }
  EXPECT_EQ(world->field().sources().size(), plan.events.size());
}

TEST(Workload, IndoorEventsUseBothGenerators) {
  auto world = std::make_unique<World>(WorldBuilder{}.cfg);
  IndoorEventPlanConfig cfg;
  cfg.horizon = sim::Time::seconds_i(4400);
  cfg.generators = {{5, 3}, {11, 7}};
  const auto plan = schedule_indoor_events(*world, cfg, sim::Rng(18));
  int g0 = 0, g1 = 0;
  for (const auto& e : plan.events) {
    (e.at == cfg.generators[0] ? g0 : g1)++;
  }
  EXPECT_GT(g0, 50);
  EXPECT_GT(g1, 50);
}

TEST(Workload, IndoorSourceHeardByExactlyFourGridNodes) {
  // "we restrict that only four nodes can hear and record each event".
  WorldBuilder b;
  auto world = std::make_unique<World>(b.cfg);
  grid_deployment(*world, 8, 6, 2.0);
  IndoorEventPlanConfig cfg;
  cfg.horizon = sim::Time::seconds_i(200);
  cfg.generators = {{5, 3}};
  schedule_indoor_events(*world, cfg, sim::Rng(19));
  world->start();
  ASSERT_FALSE(world->field().sources().empty());
  const auto& s = world->field().sources()[0];
  int hearers = 0;
  for (std::size_t i = 0; i < world->node_count(); ++i) {
    if (sim::distance(world->node(i).position(), {5, 3}) < s.audible_range())
      ++hearers;
  }
  EXPECT_EQ(hearers, 4);
}

TEST(Workload, MobileEventCrossesAtConfiguredSpeed) {
  auto world = std::make_unique<World>(WorldBuilder{}.cfg);
  MobileEventConfig cfg;
  cfg.from = {0, 0};
  cfg.to = {18, 0};
  cfg.speed = 2.0;
  cfg.start = sim::Time::seconds_i(5);
  cfg.duration = sim::Time::seconds_i(9);
  add_mobile_event(*world, cfg);
  const auto& s = world->field().sources()[0];
  EXPECT_EQ(s.position_at(sim::Time::seconds_i(5)), (sim::Position{0, 0}));
  const auto mid = s.position_at(sim::Time::seconds_i(10));
  EXPECT_NEAR(mid.x, 10.0, 1e-9);
}

TEST(Workload, OutdoorPlanHasAllComponents) {
  auto world = std::make_unique<World>(WorldBuilder{}.cfg);
  OutdoorPlanConfig cfg;
  cfg.horizon = sim::Time::seconds_i(3 * 3600);
  const auto plan = schedule_outdoor_events(*world, cfg, sim::Rng(20));
  EXPECT_GT(plan.vehicles, 10u);
  EXPECT_GT(plan.walkers, 5u);
  EXPECT_GT(plan.birds, 100u);
  EXPECT_GT(plan.spike_events, 10u);
  EXPECT_EQ(world->field().sources().size(),
            plan.vehicles + plan.walkers + plan.birds + plan.spike_events);
}

TEST(Workload, OutdoorSpikesLandInTheirWindows) {
  auto world = std::make_unique<World>(WorldBuilder{}.cfg);
  OutdoorPlanConfig cfg;
  cfg.vehicle_mean_gap = sim::Time::seconds_i(100000);  // isolate spikes
  cfg.walker_mean_gap = sim::Time::seconds_i(100000);
  cfg.bird_mean_gap = sim::Time::seconds_i(100000);
  const auto plan = schedule_outdoor_events(*world, cfg, sim::Rng(21));
  ASSERT_GT(plan.spike_events, 0u);
  for (const auto& s : world->field().sources()) {
    const double t0 = s.start().to_seconds();
    const bool spike1 = t0 >= 2700.0 && t0 <= 3300.0;
    const bool spike2 = t0 >= 5400.0 && t0 <= 7200.0;
    EXPECT_TRUE(spike1 || spike2) << "event at " << t0;
  }
}

TEST(Workload, OutdoorSpikesCanBeDisabled) {
  auto world = std::make_unique<World>(WorldBuilder{}.cfg);
  OutdoorPlanConfig cfg;
  cfg.include_spikes = false;
  const auto plan = schedule_outdoor_events(*world, cfg, sim::Rng(22));
  EXPECT_EQ(plan.spike_events, 0u);
}

}  // namespace
}  // namespace enviromic::core
