// Focused edge cases across modules that the mainline suites do not reach.
#include <gtest/gtest.h>

#include "world_fixture.h"

namespace enviromic {
namespace {

using core::Mode;
using testing::WorldBuilder;
using testing::add_event;

TEST(EdgeCase, PayloadSpanningRingWrapReadsBackIntact) {
  storage::FlashConfig fc;
  fc.capacity_bytes = 4 * 1024;  // 16 blocks
  fc.block_size = 256;
  fc.store_payloads = true;
  storage::Flash flash(fc);
  storage::Eeprom eeprom;
  storage::ChunkStore store(flash, eeprom);
  // Fill 12 blocks, pop 2 chunks (8 blocks), then append a chunk that wraps
  // the ring boundary.
  for (int i = 0; i < 3; ++i) {
    storage::Chunk c;
    c.meta.key = store.next_key(1);
    c.meta.bytes = 1000;  // 4 blocks each
    c.payload.assign(1000, static_cast<std::uint8_t>(i));
    ASSERT_TRUE(store.append(std::move(c)));
  }
  store.pop_head();
  store.pop_head();
  storage::Chunk wrap;
  wrap.meta.key = store.next_key(1);
  wrap.meta.bytes = 2000;  // 8 blocks: crosses block 15 -> 0
  wrap.payload.resize(2000);
  for (std::size_t i = 0; i < 2000; ++i)
    wrap.payload[i] = static_cast<std::uint8_t>(i % 251);
  const auto key = wrap.meta.key;
  ASSERT_TRUE(store.append(std::move(wrap)));
  const auto back = store.read_payload(key);
  ASSERT_EQ(back.size(), 2000u);
  for (std::size_t i = 0; i < 2000; ++i)
    ASSERT_EQ(back[i], static_cast<std::uint8_t>(i % 251)) << i;
}

TEST(EdgeCase, ChannelSendGivesUpAfterMaxBackoffs) {
  // A permanently busy medium (a neighbour transmitting a huge packet)
  // exhausts CSMA retries.
  sim::Scheduler sched;
  net::ChannelConfig cfg;
  cfg.loss_probability = 0.0;
  cfg.max_retries = 2;
  cfg.backoff_window = sim::Time::millis(1);
  net::Channel channel(sched, sim::Rng(5), cfg);
  auto a = channel.create_radio(1, {0, 0});
  auto b = channel.create_radio(2, {1, 0});
  // A giant packet from b occupies the air for a long time.
  net::Packet big;
  big.src = 2;
  net::TransferData d;
  d.payload_bytes = 60000;  // ~2 s of air time
  big.messages.push_back(d);
  b->send(std::move(big));
  sched.run_until(sim::Time::millis(1));
  net::Packet small;
  small.src = 1;
  small.messages.push_back(net::Sensing{});
  a->send(std::move(small));
  sched.run_until(sim::Time::millis(100));
  EXPECT_GE(a->stats().csma_backoffs, 2u);
  EXPECT_EQ(a->stats().send_failures, 1u);
}

TEST(EdgeCase, DetectorWithZeroMarginStillUsesBackground) {
  // margin 0: any signal above the ambient EWMA triggers; the detector must
  // not oscillate wildly in silence (background tracks exactly).
  sim::Scheduler sched;
  acoustic::SoundField field(0.02);
  acoustic::Microphone mic(field, {0, 0});
  acoustic::DetectorConfig cfg;
  cfg.margin = 0.0;
  acoustic::Detector det(sched, mic, sim::Rng(9), cfg);
  int onsets = 0;
  det.set_onset_handler([&] { ++onsets; });
  det.start();
  sched.run_until(sim::Time::seconds_i(30));
  EXPECT_EQ(onsets, 0);  // level == background, never strictly above
}

TEST(EdgeCase, EventExactlyAtCommRangeBoundary) {
  // Hearers right at the audible-range boundary are excluded (strict <).
  acoustic::SoundField field(0.0);
  field.add_source(acoustic::Source(
      0, std::make_shared<acoustic::StaticTrajectory>(sim::Position{0, 0}),
      std::make_shared<acoustic::ConstantWave>(1.0), sim::Time::zero(),
      sim::Time::seconds_i(10), 1.0, 2.0));
  const auto& s = field.sources()[0];
  EXPECT_FALSE(s.audible_from({2.0, 0}, sim::Time::seconds_i(1)));
  EXPECT_TRUE(s.audible_from({1.999, 0}, sim::Time::seconds_i(1)));
}

TEST(EdgeCase, BackToBackEventsReuseNothing) {
  // Two events separated by just over the detector's silence hold must
  // produce two files with distinct ids.
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(291)
                   .perfect_detection()
                   .lossless_radio()
                   .grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 9.0);
  add_event(*world, {3, 3}, 10.0, 14.0);  // 1 s gap > 400 ms hold
  world->start();
  world->run_until(sim::Time::seconds_i(20));
  const auto files = world->drain_all();
  std::set<net::EventId> coordinated;
  for (const auto& ev : files.events()) {
    if (ev.valid()) coordinated.insert(ev);
  }
  EXPECT_GE(coordinated.size(), 2u);
}

TEST(EdgeCase, SnapshotStableWhenCalledRepeatedly) {
  auto world = WorldBuilder{}
                   .mode(Mode::kCooperativeOnly)
                   .seed(292)
                   .perfect_detection()
                   .lossless_radio()
                   .grid(4, 4);
  add_event(*world, {3, 3}, 5.0, 10.0);
  world->start();
  world->run_until(sim::Time::seconds_i(15));
  const auto a = world->snapshot();
  const auto b = world->snapshot();
  EXPECT_EQ(a.miss_ratio, b.miss_ratio);
  EXPECT_EQ(a.covered_unique, b.covered_unique);
  EXPECT_EQ(a.total_messages, b.total_messages);
}

TEST(EdgeCase, MobileEventFasterThanHandoffStillPartiallyCovered) {
  // A source sprinting across the grid (4 grid lengths/s) outruns clean
  // hand-offs; coverage degrades but the system keeps functioning.
  WorldBuilder b;
  b.mode(Mode::kCooperativeOnly).seed(293).perfect_detection().lossless_radio();
  auto world = b.grid(8, 2);
  core::MobileEventConfig ev;
  ev.from = {-2, 1};
  ev.to = {18, 1};
  ev.speed = 8.0;
  ev.start = sim::Time::seconds_i(3);
  ev.duration = sim::Time::seconds(2.5);
  ev.audible_range = 2.2;
  core::add_mobile_event(*world, ev);
  world->start();
  world->run_until(sim::Time::seconds_i(10));
  util::IntervalSet rec;
  for (const auto& act : world->metrics().recording_log()) {
    if (act.appended) rec.add(act.start, act.end);
  }
  EXPECT_GT(rec.measure_within(ev.start, ev.start + ev.duration).to_seconds(),
            0.5);
}

TEST(EdgeCase, ZeroCapacityEventPlanHorizon) {
  // An event plan over a zero-length horizon schedules nothing.
  auto world = WorldBuilder{}.mode(Mode::kCooperativeOnly).seed(294).grid(2, 2);
  core::IndoorEventPlanConfig cfg;
  cfg.horizon = sim::Time::zero();
  cfg.generators = {{1, 1}};
  const auto plan =
      core::schedule_indoor_events(*world, cfg, sim::Rng(1));
  EXPECT_TRUE(plan.events.empty());
  EXPECT_EQ(plan.total_event_time, sim::Time::zero());
}

}  // namespace
}  // namespace enviromic
