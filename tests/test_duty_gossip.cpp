// Duty cycling (paper §II-B's TTL-neutrality argument) and the global
// gossip balancing strategy (paper §VI future work).
#include <gtest/gtest.h>

#include <cmath>

#include "world_fixture.h"

namespace enviromic::core {
namespace {

using testing::WorldBuilder;
using testing::add_event;
using testing::sum_nodes;

TEST(DutyCycle, NodesAlternateAwakeAndAsleep) {
  WorldBuilder b;
  b.mode(Mode::kCooperativeOnly).seed(401);
  b.cfg.node_defaults.protocol.duty_cycle = 0.5;
  b.cfg.node_defaults.protocol.duty_period = sim::Time::seconds_i(4);
  auto world = b.grid(2, 2);
  world->start();
  int asleep_samples = 0, awake_samples = 0;
  for (int t = 1; t <= 200; ++t) {
    world->run_until(sim::Time::millis(t * 100));
    for (std::size_t i = 0; i < world->node_count(); ++i) {
      (world->node(i).asleep() ? asleep_samples : awake_samples)++;
    }
  }
  const double frac =
      static_cast<double>(asleep_samples) / (asleep_samples + awake_samples);
  EXPECT_NEAR(frac, 0.5, 0.12);
}

TEST(DutyCycle, SleepingNodesHaveRadioAndDetectorDark) {
  WorldBuilder b;
  b.mode(Mode::kCooperativeOnly).seed(402);
  b.cfg.node_defaults.protocol.duty_cycle = 0.3;
  b.cfg.node_defaults.protocol.duty_period = sim::Time::seconds_i(5);
  auto world = b.grid(2, 2);
  world->start();
  bool saw_asleep = false;
  for (int t = 1; t <= 150; ++t) {
    world->run_until(sim::Time::millis(t * 100));
    for (std::size_t i = 0; i < world->node_count(); ++i) {
      auto& n = world->node(i);
      if (n.asleep()) {
        saw_asleep = true;
        EXPECT_FALSE(n.radio().is_on());
        EXPECT_FALSE(n.detector().event_present());
      }
    }
  }
  EXPECT_TRUE(saw_asleep);
}

TEST(DutyCycle, SavesEnergy) {
  auto run = [](double duty) {
    WorldBuilder b;
    b.mode(Mode::kCooperativeOnly).seed(403);
    b.cfg.node_defaults.protocol.duty_cycle = duty;
    auto world = b.grid(2, 2);
    world->start();
    world->run_until(sim::Time::seconds_i(1200));
    auto& n = world->node(0);
    n.energy().advance(world->sched().now());
    return n.energy().battery().consumed_joules();
  };
  EXPECT_LT(run(0.25), run(1.0));
}

TEST(DutyCycle, ReducesButDoesNotDestroyCoverageForSoloHearer) {
  // With several hearers, stagger keeps someone awake and coverage barely
  // moves; a solo hearer exposes the duty cycle directly (asleep => deaf).
  auto run = [](double duty) {
    WorldBuilder b;
    b.mode(Mode::kCooperativeOnly).seed(404).perfect_detection().lossless_radio();
    b.cfg.node_defaults.protocol.duty_cycle = duty;
    b.cfg.node_defaults.protocol.duty_period = sim::Time::seconds_i(8);
    auto world = b.grid(4, 4);
    for (int e = 0; e < 8; ++e) {
      // range 0.9: only node (1,1) (at 2,2 -> distance ~0) ... place the
      // source on top of one node so exactly it hears.
      add_event(*world, {2.05, 2.05}, 10.0 + e * 25.0, 20.0 + e * 25.0, 0.9);
    }
    world->start();
    world->run_until(sim::Time::seconds_i(230));
    return world->snapshot().miss_ratio;
  };
  const double full = run(1.0);
  const double half = run(0.5);
  // Sleep only costs the event onsets that land in a sleep window (the
  // recorder defers sleep while recording), so the penalty is real but
  // bounded.
  EXPECT_GT(half, full + 0.01);
  EXPECT_LT(half, 0.8);
}

TEST(DutyCycle, GroupRedundancyMasksDutyCycling) {
  // The companion claim: with four hearers and staggered phases, halving
  // the duty cycle barely moves coverage.
  auto run = [](double duty) {
    WorldBuilder b;
    b.mode(Mode::kCooperativeOnly).seed(405).perfect_detection().lossless_radio();
    b.cfg.node_defaults.protocol.duty_cycle = duty;
    b.cfg.node_defaults.protocol.duty_period = sim::Time::seconds_i(8);
    auto world = b.grid(4, 4);
    for (int e = 0; e < 8; ++e) {
      add_event(*world, {3, 3}, 10.0 + e * 25.0, 20.0 + e * 25.0);
    }
    world->start();
    world->run_until(sim::Time::seconds_i(230));
    return world->snapshot().miss_ratio;
  };
  EXPECT_LT(run(0.5), run(1.0) + 0.1);
}

TEST(DutyCycle, TtlBottleneckUnchangedByDutyCycle) {
  // Paper §II-B: "any duty-cycling will simply extend TTL_storage and
  // TTL_energy with the same proportion. The bottleneck TTL remains the
  // same." With awake-normalized rates, the same awake input yields the
  // same measured R regardless of duty.
  auto measured_rate = [](double duty) {
    WorldBuilder b;
    b.mode(Mode::kFull).seed(405);
    b.cfg.node_defaults.protocol.duty_cycle = duty;
    auto world = b.grid(2, 2);
    world->start();
    auto& n = world->node(0);
    const auto period = n.cfg().rate_update_period;
    // The node acquires 5000 bytes of audio per awake-second, reported over
    // one rate period with the matching awake share.
    const auto awake_bytes = static_cast<std::uint64_t>(
        5000.0 * period.to_seconds() * duty);
    world->run_until(period + sim::Time::millis(1));
    n.balancer().note_recorded_bytes(awake_bytes);
    world->run_until(period * 2 + sim::Time::millis(1));
    n.balancer().note_recorded_bytes(0);
    return n.balancer().acquisition_rate();
  };
  const double full = measured_rate(1.0);
  const double half = measured_rate(0.5);
  EXPECT_NEAR(full, half, full * 0.05);
}

TEST(Gossip, EstimateConvergesTowardNetworkMean) {
  WorldBuilder b;
  b.mode(Mode::kFull).seed(406).lossless_radio();
  b.cfg.node_defaults.protocol.balance_strategy = BalanceStrategy::kGlobalGossip;
  // Prevent actual migration so the estimate is observable in isolation.
  b.cfg.node_defaults.protocol.beta_max = 1e9;
  b.cfg.node_defaults.protocol.ttl_reference_s = 1e-9;
  auto world = b.grid(3, 3);
  // Unbalanced fill: one node nearly full, the rest empty.
  auto& hot = world->node(4);
  std::uint64_t stuffed = 0;
  while (hot.store().can_fit(10000)) {
    storage::Chunk c;
    c.meta.key = hot.store().next_key(hot.id());
    c.meta.bytes = 10000;
    hot.store().append(std::move(c));
    stuffed += 10240;  // 40 blocks
  }
  world->start();
  world->run_until(sim::Time::seconds_i(240));
  // True mean free.
  double mean = 0;
  for (std::size_t i = 0; i < world->node_count(); ++i) {
    mean += static_cast<double>(world->node(i).store().free_bytes());
  }
  mean /= static_cast<double>(world->node_count());
  for (std::size_t i = 0; i < world->node_count(); ++i) {
    EXPECT_NEAR(world->node(i).balancer().estimated_mean_free(), mean,
                mean * 0.35)
        << "node " << world->node(i).id();
  }
}

TEST(Gossip, GlobalStrategyAlsoDrainsHotSpots) {
  WorldBuilder b;
  b.mode(Mode::kFull, 2.0).seed(407).lossless_radio();
  b.cfg.node_defaults.protocol.balance_strategy = BalanceStrategy::kGlobalGossip;
  auto world = b.grid(3, 3);
  auto& hot = world->node(0);
  for (int i = 0; i < 120; ++i) {
    storage::Chunk c;
    c.meta.key = hot.store().next_key(hot.id());
    c.meta.bytes = 2730;
    hot.store().append(std::move(c));
  }
  world->start();
  for (int t = 1; t <= 4; ++t) {
    world->run_until(sim::Time::seconds_i(10 * t));
    hot.balancer().note_recorded_bytes(30000);
  }
  world->run_until(sim::Time::seconds_i(400));
  EXPECT_GT(hot.balancer().stats().bytes_pushed, 0u);
  EXPECT_LT(hot.store().chunk_count(), 120u);
}

TEST(Gossip, StrategyNamesStable) {
  EXPECT_STREQ(strategy_name(BalanceStrategy::kLocalGreedy), "local-greedy");
  EXPECT_STREQ(strategy_name(BalanceStrategy::kGlobalGossip), "global-gossip");
}

}  // namespace
}  // namespace enviromic::core
