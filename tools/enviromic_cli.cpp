// enviromic_cli — run any of the paper's scenarios from the command line.
//
//   enviromic_cli --scenario indoor --mode full --beta 2 --horizon 1200
//   enviromic_cli --scenario mobile --trc 0.5 --dta 30 --runs 15
//   enviromic_cli --scenario outdoor --seed 9 --csv
//   enviromic_cli --scenario voice
//   enviromic_cli --scenario chaos --faults crash=0.3,downtime=60
//
// Prints the scenario's headline metrics; --csv emits the time series for
// plotting, --contours renders the spatial storage distribution.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "enviromic.h"
#include "storage/erasure.h"
#include "util/parse.h"

using namespace enviromic;

namespace {

struct Args {
  std::string scenario = "indoor";
  core::Mode mode = core::Mode::kFull;
  double beta = 2.0;
  std::uint64_t seed = 7;
  double horizon_s = 4400.0;
  double sample_s = 60.0;
  double trc_s = 1.0;
  int dta_ms = 70;
  int runs = 1;
  bool csv = false;
  bool contours = false;
  bool gossip = false;
  core::StoragePolicy policy = core::StoragePolicy::kMigrate;
  int coded_k = 3;
  int coded_n = 5;
  bool have_faults = false;
  core::ChaosSpec chaos;
  int drain_sinks = 0;
  int drain_hops = 4;
  std::string drain_resource = "/chunks/all";
  std::string trace_path;
  double trace_sample_s = 0.0;
  std::string series_path;
  double series_interval_s = 0.0;
  std::vector<core::HealthProbe> probes;
  std::string json_path;
};

// Strict flag-value parsers: reject non-numeric, trailing-junk, and
// out-of-range input with a diagnostic naming the flag, then exit 2 (the
// same status parse() failures produce). `--seed garbage` used to be seed 0.
std::uint64_t flag_u64(const char* flag, const char* value) {
  std::uint64_t v = 0;
  if (!util::parse_u64(value, &v)) {
    std::fprintf(stderr, "bad %s '%s': expected an unsigned integer\n", flag,
                 value);
    std::exit(2);
  }
  return v;
}

int flag_int(const char* flag, const char* value) {
  int v = 0;
  if (!util::parse_int(value, &v)) {
    std::fprintf(stderr, "bad %s '%s': expected an integer\n", flag, value);
    std::exit(2);
  }
  return v;
}

double flag_double(const char* flag, const char* value) {
  double v = 0.0;
  if (!util::parse_double(value, &v)) {
    std::fprintf(stderr, "bad %s '%s': expected a number\n", flag, value);
    std::exit(2);
  }
  return v;
}

void usage() {
  std::puts(
      "usage: enviromic_cli [options]\n"
      "  --scenario indoor|outdoor|mobile|voice|chaos (default indoor)\n"
      "  --mode uncoordinated|coop|full           (default full)\n"
      "  --beta <beta_max>                        (default 2)\n"
      "  --gossip                                 global balancing strategy\n"
      "  --seed <n>                               (default 7)\n"
      "  --horizon <seconds>                      (default 4400)\n"
      "  --sample <seconds>                       snapshot period (60)\n"
      "  --storage-policy migrate|coded           (default migrate)\n"
      "  --coded-k <k>  --coded-n <n>             erasure geometry (3 of 5)\n"
      "  --trc <seconds>  --dta <ms>              mobile scenario knobs\n"
      "  --runs <n>                               repetitions (mobile)\n"
      "  --csv                                    CSV time series output\n"
      "  --json <path|->                          append one JSON record per\n"
      "      run ({\"scenario\",\"seed\",\"metrics\"}; - = stdout)\n"
      "  --contours                               storage contour at end\n"
      "  --log-level off|error|warn|info|debug|trace\n"
      "  --trace <path>                           record a protocol trace;\n"
      "      .jsonl extension dumps raw records, anything else writes\n"
      "      Chrome-trace JSON (open in Perfetto / chrome://tracing)\n"
      "  --trace-sample-interval <seconds>        per-node counter samples\n"
      "      in the trace (chaos scenario; > 0, off by default)\n"
      "  --series <path>                          telemetry time series\n"
      "      (chaos scenario); .jsonl extension dumps JSONL, anything else\n"
      "      CSV (one column per gauge, per-node gauges as name[node])\n"
      "  --series-interval <seconds>              telemetry sampling cadence\n"
      "      (> 0; default 1 when --series is given)\n"
      "  --probe <name>=<value>                   declarative health probe,\n"
      "      repeatable; a trip dumps the flight-recorder tail and exits 1.\n"
      "      names: wear_spread_max miss_ratio_max battery_floor\n"
      "             window_stalls_max channel_busy_max\n"
      "  --faults k=v[,k=v...]                    fault plan; implies chaos\n"
      "      keys: crash downtime permanent lose_data brownout brownout_len\n"
      "            clockstep clockstep_max burst pgb pbg loss_bad loss_good\n"
      "            asym   (e.g. --faults crash=0.3,downtime=60,burst=1)\n"
      "  --drain-sinks <0..4>                     chaos scenario: corner sinks\n"
      "      that flood spanning-tree drain queries at the horizon (0 = off)\n"
      "  --drain-hops <n>                         drain flood depth (4)\n"
      "  --drain-resource <path>                  what the sinks ask for:\n"
      "      /chunks/all | /chunks/time/<from>-<to> | /chunks/source/<id>\n");
}

bool parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--scenario") {
      args.scenario = next("--scenario");
    } else if (a == "--mode") {
      const std::string m = next("--mode");
      if (m == "uncoordinated") args.mode = core::Mode::kUncoordinated;
      else if (m == "coop") args.mode = core::Mode::kCooperativeOnly;
      else if (m == "full") args.mode = core::Mode::kFull;
      else return false;
    } else if (a == "--beta") {
      args.beta = flag_double("--beta", next("--beta"));
    } else if (a == "--gossip") {
      args.gossip = true;
    } else if (a == "--storage-policy") {
      const std::string p = next("--storage-policy");
      if (p == "migrate") args.policy = core::StoragePolicy::kMigrate;
      else if (p == "coded") args.policy = core::StoragePolicy::kCoded;
      else {
        std::fprintf(stderr, "unknown storage policy %s\n", p.c_str());
        return false;
      }
    } else if (a == "--coded-k") {
      args.coded_k = flag_int("--coded-k", next("--coded-k"));
    } else if (a == "--coded-n") {
      args.coded_n = flag_int("--coded-n", next("--coded-n"));
    } else if (a == "--seed") {
      args.seed = flag_u64("--seed", next("--seed"));
    } else if (a == "--horizon") {
      args.horizon_s = flag_double("--horizon", next("--horizon"));
    } else if (a == "--sample") {
      args.sample_s = flag_double("--sample", next("--sample"));
    } else if (a == "--trc") {
      args.trc_s = flag_double("--trc", next("--trc"));
    } else if (a == "--dta") {
      args.dta_ms = flag_int("--dta", next("--dta"));
    } else if (a == "--runs") {
      args.runs = flag_int("--runs", next("--runs"));
      if (args.runs < 1) {
        std::fprintf(stderr, "bad --runs %d (need >= 1)\n", args.runs);
        return false;
      }
    } else if (a == "--faults") {
      std::string err;
      if (!core::parse_fault_spec(next("--faults"), args.chaos, err)) {
        std::fprintf(stderr, "bad --faults spec: %s\n", err.c_str());
        return false;
      }
      args.have_faults = true;
    } else if (a == "--drain-sinks") {
      args.drain_sinks = flag_int("--drain-sinks", next("--drain-sinks"));
      if (args.drain_sinks < 0 || args.drain_sinks > 4) {
        std::fprintf(stderr, "bad --drain-sinks %d (need 0..4)\n",
                     args.drain_sinks);
        return false;
      }
    } else if (a == "--drain-hops") {
      args.drain_hops = flag_int("--drain-hops", next("--drain-hops"));
      if (args.drain_hops < 1 || args.drain_hops > 255) {
        std::fprintf(stderr, "bad --drain-hops %d (need 1..255)\n",
                     args.drain_hops);
        return false;
      }
    } else if (a == "--drain-resource") {
      args.drain_resource = next("--drain-resource");
      if (!core::parse_resource(args.drain_resource)) {
        std::fprintf(stderr,
                     "bad --drain-resource '%s': expected /chunks/all, "
                     "/chunks/time/<from>-<to>, or /chunks/source/<id>\n",
                     args.drain_resource.c_str());
        return false;
      }
    } else if (a == "--log-level") {
      const std::string lv = next("--log-level");
      if (lv == "off") sim::set_log_level(sim::LogLevel::kOff);
      else if (lv == "error") sim::set_log_level(sim::LogLevel::kError);
      else if (lv == "warn") sim::set_log_level(sim::LogLevel::kWarn);
      else if (lv == "info") sim::set_log_level(sim::LogLevel::kInfo);
      else if (lv == "debug") sim::set_log_level(sim::LogLevel::kDebug);
      else if (lv == "trace") sim::set_log_level(sim::LogLevel::kTrace);
      else {
        std::fprintf(stderr, "unknown log level %s\n", lv.c_str());
        return false;
      }
    } else if (a == "--trace") {
      args.trace_path = next("--trace");
    } else if (a == "--json") {
      args.json_path = next("--json");
    } else if (a == "--trace-sample-interval") {
      args.trace_sample_s =
          flag_double("--trace-sample-interval", next("--trace-sample-interval"));
      if (args.trace_sample_s <= 0.0) {
        std::fprintf(stderr, "bad --trace-sample-interval %g (need > 0)\n",
                     args.trace_sample_s);
        return false;
      }
    } else if (a == "--series") {
      args.series_path = next("--series");
    } else if (a == "--series-interval") {
      args.series_interval_s =
          flag_double("--series-interval", next("--series-interval"));
      if (args.series_interval_s <= 0.0) {
        std::fprintf(stderr, "bad --series-interval %g (need > 0)\n",
                     args.series_interval_s);
        return false;
      }
    } else if (a == "--probe") {
      core::HealthProbe p;
      std::string err;
      if (!core::parse_health_probe(next("--probe"), &p, &err)) {
        std::fprintf(stderr, "bad --probe: %s\n", err.c_str());
        return false;
      }
      args.probes.push_back(std::move(p));
    } else if (a == "--csv") {
      args.csv = true;
    } else if (a == "--contours") {
      args.contours = true;
    } else if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return false;
    }
  }
  std::string geom_err;
  if (!storage::ErasureCodec::validate_geometry(args.coded_k, args.coded_n,
                                                &geom_err)) {
    std::fprintf(stderr, "bad erasure geometry: %s\n", geom_err.c_str());
    return false;
  }
  return true;
}

/// Append one run's machine-readable record to --json PATH ("-" = stdout).
void emit_json_record(const Args& args, const std::string& scenario,
                      std::uint64_t seed, const core::RunRecord& rec) {
  if (args.json_path.empty()) return;
  const std::string line = core::run_record_json(scenario, seed, rec) + "\n";
  if (args.json_path == "-") {
    std::fwrite(line.data(), 1, line.size(), stdout);
    return;
  }
  std::FILE* f = std::fopen(args.json_path.c_str(), "a");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open --json %s\n", args.json_path.c_str());
    return;
  }
  std::fwrite(line.data(), 1, line.size(), f);
  std::fclose(f);
}

int run_indoor_cli(const Args& args) {
  core::IndoorRunConfig cfg;
  cfg.mode = args.mode;
  cfg.beta_max = args.beta;
  cfg.seed = args.seed;
  cfg.horizon = sim::Time::seconds(args.horizon_s);
  cfg.sample_period = sim::Time::seconds(args.sample_s);
  if (args.gossip) {
    // run_indoor derives its node params from the mode/beta; rebuild them
    // here with the strategy override.
    // (The runner keeps its own interface minimal, so we drive World
    // directly for this variant.)
    core::WorldConfig wc;
    wc.seed = cfg.seed;
    wc.node_defaults = core::paper_node_params(cfg.mode, cfg.beta_max);
    wc.node_defaults.protocol.balance_strategy =
        core::BalanceStrategy::kGlobalGossip;
    wc.node_defaults.flash.capacity_bytes = static_cast<std::uint64_t>(
        wc.node_defaults.flash.capacity_bytes * cfg.flash_scale);
    core::World world(wc);
    core::grid_deployment(world, cfg.grid_nx, cfg.grid_ny, cfg.spacing_ft);
    core::IndoorEventPlanConfig events;
    events.horizon = cfg.horizon;
    events.generators = {{5, 3}, {11, 7}};
    core::schedule_indoor_events(world, events, world.rng().fork("plan"));
    world.start();
    world.run_until(cfg.horizon);
    const auto s = world.snapshot();
    std::printf("indoor(gossip) miss=%.3f redundancy=%.3f messages=%llu\n",
                s.miss_ratio, s.redundancy_ratio,
                static_cast<unsigned long long>(s.total_messages));
    return 0;
  }
  const auto res = core::run_indoor(cfg);
  emit_json_record(args, "indoor", cfg.seed, core::indoor_run_record(res));
  if (args.csv) {
    util::Table t({"t_s", "miss", "redundancy", "messages"});
    for (const auto& s : res.series) {
      t.add_row({util::fmt(s.t.to_seconds(), 0), util::fmt(s.miss_ratio),
                 util::fmt(s.redundancy_ratio),
                 util::fmt(static_cast<long long>(s.total_messages))});
    }
    t.print_csv(std::cout);
  }
  const auto& last = res.series.back();
  std::printf("indoor[%s beta=%.0f] t=%.0fs miss=%.3f redundancy=%.3f "
              "messages=%llu\n",
              core::mode_name(args.mode), args.beta, last.t.to_seconds(),
              last.miss_ratio, last.redundancy_ratio,
              static_cast<unsigned long long>(last.total_messages));
  if (args.contours) {
    util::Grid grid(static_cast<std::size_t>(res.grid_nx),
                    static_cast<std::size_t>(res.grid_ny));
    for (std::size_t i = 0; i < last.per_node_used_bytes.size(); ++i) {
      grid.at(i % res.grid_nx, i / res.grid_nx) =
          static_cast<double>(last.per_node_used_bytes[i]);
    }
    util::render_contour(std::cout, grid, "storage occupancy (bytes)");
  }
  return 0;
}

int run_mobile_cli(const Args& args) {
  std::vector<double> misses;
  for (int r = 0; r < args.runs; ++r) {
    core::MobileRunConfig cfg;
    // Run 0 stays on the base seed; later runs are splitmix64-derived so
    // adjacent base seeds never share worlds (seed 7 run 1 used to be the
    // same world as seed 8 run 0 under the old `seed + r` rule).
    cfg.seed = core::derive_run_seed(args.seed, static_cast<std::uint64_t>(r));
    cfg.task_period = sim::Time::seconds(args.trc_s);
    cfg.task_assign_delay = sim::Time::millis(args.dta_ms);
    const auto res = core::run_mobile(cfg);
    emit_json_record(args, "mobile", cfg.seed, core::mobile_run_record(res));
    misses.push_back(res.miss_ratio);
  }
  std::printf("mobile[Trc=%.1fs Dta=%dms] runs=%d miss=%.3f ci90=%.3f\n",
              args.trc_s, args.dta_ms, args.runs, util::mean(misses),
              util::ci90_halfwidth(misses));
  return 0;
}

int run_outdoor_cli(const Args& args) {
  core::OutdoorRunConfig cfg;
  cfg.seed = args.seed;
  cfg.horizon = sim::Time::seconds(args.horizon_s);
  cfg.beta_max = args.beta;
  const auto res = core::run_outdoor(cfg);
  emit_json_record(args, "outdoor", cfg.seed, core::outdoor_run_record(res));
  if (args.csv) {
    util::Table t({"minute", "recorded_s"});
    for (std::size_t m = 0; m < res.recorded_seconds_per_minute.size(); ++m) {
      t.add_row({util::fmt(static_cast<long long>(m)),
                 util::fmt(res.recorded_seconds_per_minute[m], 1)});
    }
    t.print_csv(std::cout);
  }
  std::printf("outdoor nodes=%zu miss=%.3f hottest=node%u\n",
              res.positions.size(), res.final_snapshot.miss_ratio,
              res.hottest);
  return 0;
}

int run_voice_cli(const Args& args) {
  core::VoiceRunConfig cfg;
  cfg.seed = args.seed;
  const auto res = core::run_voice(cfg);
  emit_json_record(args, "voice", cfg.seed, core::voice_run_record(res));
  std::printf("voice coverage=%.1f%% envelope_correlation=%.3f\n",
              res.stitched_coverage * 100.0, res.envelope_correlation);
  return 0;
}

int run_chaos_cli(const Args& args) {
  core::ChaosRunConfig cfg;
  cfg.seed = args.seed;
  cfg.horizon = sim::Time::seconds(args.horizon_s);
  cfg.beta_max = args.beta;
  if (args.trace_sample_s > 0.0) {
    cfg.trace_sample_interval = sim::Time::seconds(args.trace_sample_s);
  }
  if (args.series_interval_s > 0.0) {
    cfg.series_interval = sim::Time::seconds(args.series_interval_s);
  } else if (!args.series_path.empty()) {
    cfg.series_interval = sim::Time::seconds_i(1);
  }
  cfg.health_probes = args.probes;
  cfg.storage_policy = args.policy;
  cfg.coded_k = args.coded_k;
  cfg.coded_n = args.coded_n;
  cfg.drain_sinks = args.drain_sinks;
  cfg.drain_hops = args.drain_hops;
  cfg.drain_resource = args.drain_resource;
  if (args.have_faults) {
    cfg.faults = args.chaos.faults;
    cfg.burst = args.chaos.burst;
    cfg.link_asymmetry_max = args.chaos.link_asymmetry_max;
  } else {
    // Bare `--scenario chaos`: a representative default storm.
    cfg.faults.crash_probability = 0.3;
    cfg.faults.downtime_mean = sim::Time::seconds_i(60);
    cfg.burst.enabled = true;
  }
  const auto res = core::run_chaos(cfg);
  emit_json_record(args, "chaos", cfg.seed, core::chaos_run_record(res));
  const auto& f = res.final_snapshot.faults;
  std::printf("chaos[seed=%llu] nodes=%zu chunks=%llu miss=%.3f\n",
              static_cast<unsigned long long>(args.seed), res.nodes,
              static_cast<unsigned long long>(res.live_chunks),
              res.final_snapshot.miss_ratio);
  std::printf(
      "  faults: crashes=%u reboots=%u permanent=%u brownouts=%u "
      "clock_steps=%u downtime=%.0fs\n",
      f.crashes, f.reboots, f.permanent_failures, f.brownouts, f.clock_steps,
      f.downtime_total.to_seconds());
  std::printf(
      "  recovery: chunks_recovered=%llu mismatches=%llu down_at_end=%u "
      "lost=%u\n",
      static_cast<unsigned long long>(f.chunks_recovered),
      static_cast<unsigned long long>(f.recovery_mismatches),
      res.nodes_down_at_end, res.nodes_lost);
  std::printf(
      "  transfers: aborts=%u duplicate_risks=%u rx_expired=%u "
      "stuck_tx=%u stuck_rx=%u\n",
      res.final_snapshot.transfer_aborts,
      res.final_snapshot.transfer_duplicate_risks,
      res.final_snapshot.transfer_rx_expired, res.stuck_tx_sessions,
      res.stuck_rx_sessions);
  std::printf(
      "  transfer window: frags_retried=%u window_stalls=%u max_in_flight=%u\n",
      res.final_snapshot.transfer_fragments_retried,
      res.final_snapshot.transfer_window_stalls,
      res.final_snapshot.transfer_max_in_flight);
  std::printf(
      "  wear[min=%llu max=%llu spread=%llu] energy[total=%.1fJ min=%.1fJ]\n",
      static_cast<unsigned long long>(res.final_snapshot.wear_min),
      static_cast<unsigned long long>(res.final_snapshot.wear_max),
      static_cast<unsigned long long>(res.final_snapshot.wear_spread),
      res.final_snapshot.battery_total_j, res.final_snapshot.battery_min_j);
  const double overhead =
      res.census_original_bytes > 0
          ? static_cast<double>(res.census_stored_bytes) /
                static_cast<double>(res.census_original_bytes)
          : 1.0;
  std::printf(
      "  payloads[%s]: total=%llu reconstructible=%llu lost_to_death=%llu "
      "overhead=%.2fx\n",
      core::policy_name(args.policy),
      static_cast<unsigned long long>(res.payloads_total),
      static_cast<unsigned long long>(res.payloads_reconstructible),
      static_cast<unsigned long long>(res.payloads_lost_to_death), overhead);
  if (res.retrieval_sinks > 0) {
    std::printf(
        "  retrieval[%s sinks=%u hops=%d]: eligible=%llu collected=%llu "
        "miss=%.3f span=%.1fs double_uploads=%llu relayed=%u "
        "descriptor_acks=%u relay_fallbacks=%u\n",
        args.drain_resource.c_str(), res.retrieval_sinks, args.drain_hops,
        static_cast<unsigned long long>(res.retrieval_eligible),
        static_cast<unsigned long long>(res.retrieval_collected),
        res.retrieval_miss_ratio, res.retrieval_drain_span.to_seconds(),
        static_cast<unsigned long long>(res.retrieval_double_uploads),
        res.final_snapshot.retrieval_chunks_relayed,
        res.final_snapshot.retrieval_descriptor_acks,
        res.final_snapshot.retrieval_relay_fallbacks);
  }
  if (args.policy == core::StoragePolicy::kCoded) {
    std::printf(
        "  coded[k=%d n=%d]: chunks=%u frags_placed=%u frags_failed=%u "
        "released=%u kept=%u decode: reconstructed=%llu partial=%llu\n",
        args.coded_k, args.coded_n, res.coded.chunks_coded,
        res.coded.fragments_placed, res.coded.fragments_failed,
        res.coded.originals_released, res.coded.originals_kept,
        static_cast<unsigned long long>(res.decode.groups_reconstructed),
        static_cast<unsigned long long>(res.decode.groups_partial));
  }
  std::printf(
      "  invariants: stores_recoverable=%d retrieval_exact_once=%d "
      "counters_consistent=%d => %s\n",
      res.stores_recoverable ? 1 : 0, res.retrieval_exact_once ? 1 : 0,
      res.counters_consistent ? 1 : 0,
      res.invariants_hold() ? "OK" : "VIOLATED");
  for (const auto& t : res.health_trips) {
    std::printf("  health trip: %s (%s = %g vs threshold %g) at t=%.1fs\n",
                t.probe.c_str(), t.gauge.c_str(), t.value, t.threshold,
                t.at.to_seconds());
  }
  return res.invariants_hold() && res.health_trips.empty() ? 0 : 1;
}

}  // namespace

int dispatch(const Args& args) {
  if (args.have_faults || args.scenario == "chaos") return run_chaos_cli(args);
  if (args.scenario == "indoor") return run_indoor_cli(args);
  if (args.scenario == "mobile") return run_mobile_cli(args);
  if (args.scenario == "outdoor") return run_outdoor_cli(args);
  if (args.scenario == "voice") return run_voice_cli(args);
  usage();
  return 2;
}

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) {
    usage();
    return 2;
  }
  if (args.trace_path.empty() && args.series_path.empty())
    return dispatch(args);

  auto ends_with_jsonl = [](const std::string& p) {
    return p.size() >= 6 && p.compare(p.size() - 6, 6, ".jsonl") == 0;
  };
  if (!args.trace_path.empty()) sim::Trace::instance().enable();
  if (!args.series_path.empty()) {
    // Start the run with a cold recorder so the export holds exactly this
    // run's samples. (Health probes without --series enable/clear inside
    // run_chaos instead; nothing to export.)
    sim::Telemetry::instance().clear();
    sim::Telemetry::instance().enable();
  }
  int rc = dispatch(args);
  if (!args.trace_path.empty()) {
    auto& trace = sim::Trace::instance();
    trace.disable();
    const bool ok = ends_with_jsonl(args.trace_path)
                        ? trace.export_jsonl(args.trace_path)
                        : trace.export_chrome_trace(args.trace_path);
    if (!ok) {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   args.trace_path.c_str());
      if (rc == 0) rc = 1;
    } else {
      std::fprintf(stderr, "trace: %llu records (%zu kept) -> %s\n",
                   static_cast<unsigned long long>(trace.total_recorded()),
                   trace.size(), args.trace_path.c_str());
    }
  }
  if (!args.series_path.empty()) {
    auto& tel = sim::Telemetry::instance();
    tel.disable();
    const bool ok = ends_with_jsonl(args.series_path)
                        ? tel.export_jsonl(args.series_path)
                        : tel.export_csv(args.series_path);
    if (!ok) {
      std::fprintf(stderr, "failed to write series to %s\n",
                   args.series_path.c_str());
      if (rc == 0) rc = 1;
    } else {
      std::fprintf(stderr, "series: %zu samples x %zu series -> %s\n",
                   tel.sample_count(), tel.series_count(),
                   args.series_path.c_str());
    }
  }
  return rc;
}
