// enviromic_fleet — deterministic multi-process campaign runner.
//
//   enviromic_fleet --scenario chaos --seeds 16 -j 8 \
//       --faults crash=0.3,downtime=60 --set horizon=300 --out campaign.json
//   enviromic_fleet --scenario chaos --sweep crash=0.1,0.3,0.5 --seeds 8 \
//       --out campaign.json --csv campaign.csv
//   enviromic_fleet ... --resume campaign.json --out campaign.json
//
// Expands a campaign spec (scenario, parameter sweep axes, seed range,
// fault config) into the cross product of parameter points x seeds, forks
// one worker process per world up to -j concurrent, and merges the results
// into one deterministic report: byte-identical for the same spec whatever
// -j, the completion order, or worker retries, because rows are sorted by
// (parameter point, seed index) and never by arrival. A crashed or hung
// worker is a recorded row, not a harness death.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/fleet.h"
#include "util/parse.h"

using namespace enviromic;

namespace {

void usage() {
  std::puts(
      "usage: enviromic_fleet [options]\n"
      "  --scenario chaos|indoor|mobile|outdoor|selftest  (default chaos)\n"
      "  --seed <n>                base seed (default 7); world seeds are\n"
      "      derive_run_seed(base, i) like enviromic_cli --runs\n"
      "  --seeds <n>               worlds per parameter point (default 8)\n"
      "  --sweep name=v1,v2,...    sweep axis; repeat for a grid (cross\n"
      "      product, first axis slowest)\n"
      "  --set name=value          fixed parameter for every world; repeat\n"
      "  --faults k=v[,k=v...]     chaos fault spec (parse_fault_spec keys)\n"
      "  --horizon <seconds>       sugar for --set horizon=<s>\n"
      "  --beta <beta_max>         sugar for --set beta=<v>\n"
      "  --storage-policy migrate|coded   sugar for --set coded=0|1\n"
      "  --coded-k <k> --coded-n <n>      erasure geometry (3 of 5)\n"
      "  -j, --jobs <n>            concurrent worker processes (default 1)\n"
      "  --timeout-s <seconds>     per-attempt wall-clock budget (0 = none)\n"
      "  --retries <n>             extra attempts per failed world (default 1)\n"
      "  --out <path|->            write the merged JSON report (default -)\n"
      "  --csv <path>              also write the per-world CSV rows\n"
      "  --resume <path>           reuse ok rows from a previous JSON report\n"
      "  --series-interval <s>     chaos only: sample telemetry every <s>\n"
      "      simulated seconds in every world (> 0; needs --series-dir)\n"
      "  --series-dir <dir>        per-world series files land here as\n"
      "      world_p<point>_s<seed_index>.csv (kept for --resume)\n"
      "  --series-out <path>       write the merged cross-seed percentile\n"
      "      bands (point,t_s,series,p10,p50,p90,n); default\n"
      "      <series-dir>/merged_bands.csv\n"
      "\n"
      "exit: 0 all worlds ok, 1 some world failed, 2 bad arguments\n"
      "\n"
      "chaos parameters: horizon grace beta flash_scale grid_nx grid_ny\n"
      "  spacing crash downtime permanent lose_data brownout brownout_len\n"
      "  clockstep clockstep_max burst asym coded coded_k coded_n replicas\n"
      "  window census\n"
      "indoor: horizon beta flash_scale mode grid_nx grid_ny\n"
      "mobile: trc dta prelude event_s grid_nx grid_ny\n"
      "outdoor: horizon beta nodes plot_ft time_scale\n");
}

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "enviromic_fleet: %s\n", msg.c_str());
  std::exit(2);
}

std::uint64_t flag_u64(const char* flag, const char* value) {
  std::uint64_t v = 0;
  if (!util::parse_u64(value, &v)) {
    die(std::string("bad ") + flag + " '" + value +
        "': expected an unsigned integer");
  }
  return v;
}

int flag_int(const char* flag, const char* value) {
  int v = 0;
  if (!util::parse_int(value, &v)) {
    die(std::string("bad ") + flag + " '" + value + "': expected an integer");
  }
  return v;
}

double flag_double(const char* flag, const char* value) {
  double v = 0.0;
  if (!util::parse_double(value, &v)) {
    die(std::string("bad ") + flag + " '" + value + "': expected a number");
  }
  return v;
}

/// Split "name=v1,v2,..." into an axis with strictly parsed values.
core::FleetAxis parse_axis(const char* flag, const std::string& spec) {
  const auto eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    die(std::string("bad ") + flag + " '" + spec + "': expected name=v1,v2,...");
  }
  core::FleetAxis axis;
  axis.name = spec.substr(0, eq);
  std::size_t pos = eq + 1;
  while (pos <= spec.size()) {
    auto comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string tok = spec.substr(pos, comma - pos);
    double v = 0.0;
    if (!util::parse_double(tok.c_str(), &v)) {
      die(std::string("bad ") + flag + " value '" + tok + "' in '" + spec +
          "': expected a number");
    }
    axis.values.push_back(v);
    pos = comma + 1;
  }
  return axis;
}

void set_fixed(core::FleetSpec& spec, const std::string& name, double value) {
  spec.fixed.emplace_back(name, value);
}

}  // namespace

int main(int argc, char** argv) {
  core::FleetSpec spec;
  std::string out_path = "-";
  std::string csv_path;
  std::string resume_path;
  std::string series_out_path;
  int coded_k = 3, coded_n = 5;
  bool coded = false, have_geometry = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) die(std::string("missing value for ") + what);
      return argv[++i];
    };
    if (a == "--scenario") {
      spec.scenario = next("--scenario");
    } else if (a == "--seed") {
      spec.base_seed = flag_u64("--seed", next("--seed"));
    } else if (a == "--seeds") {
      spec.seeds_per_point = flag_int("--seeds", next("--seeds"));
      if (spec.seeds_per_point < 1) die("bad --seeds: need >= 1");
    } else if (a == "--sweep") {
      spec.sweep.push_back(parse_axis("--sweep", next("--sweep")));
    } else if (a == "--set") {
      const std::string kv = next("--set");
      const auto eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) {
        die("bad --set '" + kv + "': expected name=value");
      }
      double v = 0.0;
      if (!util::parse_double(kv.c_str() + eq + 1, &v)) {
        die("bad --set '" + kv + "': expected a number after '='");
      }
      set_fixed(spec, kv.substr(0, eq), v);
    } else if (a == "--faults") {
      spec.faults_spec = next("--faults");
    } else if (a == "--horizon") {
      set_fixed(spec, "horizon", flag_double("--horizon", next("--horizon")));
    } else if (a == "--beta") {
      set_fixed(spec, "beta", flag_double("--beta", next("--beta")));
    } else if (a == "--storage-policy") {
      const std::string p = next("--storage-policy");
      if (p == "migrate") coded = false;
      else if (p == "coded") coded = true;
      else die("unknown storage policy '" + p + "'");
      set_fixed(spec, "coded", coded ? 1.0 : 0.0);
    } else if (a == "--coded-k") {
      coded_k = flag_int("--coded-k", next("--coded-k"));
      have_geometry = true;
    } else if (a == "--coded-n") {
      coded_n = flag_int("--coded-n", next("--coded-n"));
      have_geometry = true;
    } else if (a == "-j" || a == "--jobs") {
      spec.jobs = flag_int("--jobs", next("--jobs"));
      if (spec.jobs < 1) die("bad --jobs: need >= 1");
    } else if (a == "--timeout-s") {
      spec.timeout_s = flag_double("--timeout-s", next("--timeout-s"));
      if (spec.timeout_s < 0.0) die("bad --timeout-s: need >= 0");
    } else if (a == "--retries") {
      spec.retries = flag_int("--retries", next("--retries"));
      if (spec.retries < 0) die("bad --retries: need >= 0");
    } else if (a == "--out") {
      out_path = next("--out");
    } else if (a == "--csv") {
      csv_path = next("--csv");
    } else if (a == "--resume") {
      resume_path = next("--resume");
    } else if (a == "--series-interval") {
      spec.series_interval_s =
          flag_double("--series-interval", next("--series-interval"));
      if (spec.series_interval_s <= 0.0) {
        die("bad --series-interval: need > 0");
      }
    } else if (a == "--series-dir") {
      spec.series_dir = next("--series-dir");
    } else if (a == "--series-out") {
      series_out_path = next("--series-out");
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      usage();
      return 2;
    }
  }

  if (have_geometry) {
    // Geometry flags imply coded storage unless --storage-policy said
    // otherwise; validate_fleet_spec re-checks through
    // ErasureCodec::validate_geometry and names the GF(2^8) constraint.
    set_fixed(spec, "coded_k", coded_k);
    set_fixed(spec, "coded_n", coded_n);
    bool policy_set = false;
    for (const auto& [name, value] : spec.fixed) {
      (void)value;
      if (name == "coded") policy_set = true;
    }
    if (!policy_set) set_fixed(spec, "coded", 1.0);
  }

  std::string resume_report;
  if (!resume_path.empty()) {
    std::ifstream in(resume_path);
    if (!in) die("cannot read --resume " + resume_path);
    std::ostringstream buf;
    buf << in.rdbuf();
    resume_report = buf.str();
  }

  const auto result = core::run_fleet(spec, resume_report);
  if (!result.ok()) die(result.error);

  if (out_path == "-") {
    std::fwrite(result.report_json.data(), 1, result.report_json.size(),
                stdout);
  } else {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) die("cannot write --out " + out_path);
    out << result.report_json;
  }
  if (!csv_path.empty()) {
    std::ofstream out(csv_path, std::ios::trunc);
    if (!out) die("cannot write --csv " + csv_path);
    out << result.report_csv;
  }
  if (!result.series_report.empty()) {
    if (series_out_path.empty()) {
      series_out_path = spec.series_dir + "/merged_bands.csv";
    }
    std::ofstream out(series_out_path, std::ios::trunc);
    if (!out) die("cannot write --series-out " + series_out_path);
    out << result.series_report;
  }
  std::fprintf(stderr,
               "fleet: %d worlds (%d resumed), %d launched, %d retried, "
               "%d failed\n",
               result.worlds, result.resumed, result.launched, result.retried,
               result.failed);
  return result.failed == 0 ? 0 : 1;
}
