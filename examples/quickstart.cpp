// Quickstart: build a small EnviroMic network, play one acoustic event,
// run, and inspect what the network stored.
//
//   $ ./examples/quickstart
//
// Walks through the full public API surface: World construction, node
// placement, sources, running, snapshots, and retrieval by physically
// collecting the motes (drain_all).
#include <cstdio>
#include <memory>

#include "enviromic.h"

using namespace enviromic;

int main() {
  // 1. A world: deterministic seed, default MicaZ-like node parameters.
  core::WorldConfig config;
  config.seed = 2026;
  config.node_defaults = core::paper_node_params(core::Mode::kFull,
                                                 /*beta_max=*/2.0);
  core::World world(config);

  // 2. A 4x4 grid of motes, 2 ft apart (like the paper's indoor testbed).
  core::grid_deployment(world, 4, 4, 2.0);

  // 3. One 12-second bird-song-like event in the middle of the grid,
  //    audible within 2 ft.
  world.add_source(
      std::make_shared<acoustic::StaticTrajectory>(sim::Position{3.0, 3.0}),
      std::make_shared<acoustic::ToneWave>(/*carrier=*/3.0, /*tremolo=*/0.5),
      sim::Time::seconds_i(5), sim::Time::seconds_i(17), /*loudness=*/1.0,
      /*audible_range=*/2.0);

  // 4. Run for half a simulated minute.
  world.start();
  world.run_until(sim::Time::seconds_i(30));

  // 5. What did the network capture?
  const auto snapshot = world.snapshot();
  std::printf("hearable event time : %.1f s\n", snapshot.hearable.to_seconds());
  std::printf("uniquely recorded   : %.1f s (miss ratio %.1f%%)\n",
              snapshot.covered_unique.to_seconds(),
              snapshot.miss_ratio * 100.0);
  std::printf("redundancy ratio    : %.1f%%\n",
              snapshot.redundancy_ratio * 100.0);
  std::printf("messages on the air : %llu\n",
              static_cast<unsigned long long>(snapshot.total_messages));

  // 6. Collect the motes: reassemble distributed files from every store.
  const auto files = world.drain_all();
  std::printf("\nretrieved %zu file(s), %zu chunk(s):\n", files.file_count(),
              files.chunk_count());
  for (const auto& event : files.events()) {
    const auto s = files.summarize(event);
    std::printf(
        "  file %s: %zu chunks, %llu bytes, %.2fs..%.2fs, covered %.1fs, "
        "%zu recorder(s)\n",
        event.valid() ? event.str().c_str() : "(uncoordinated)", s.chunk_count,
        static_cast<unsigned long long>(s.total_bytes),
        s.first_start.to_seconds(), s.last_end.to_seconds(),
        s.covered.to_seconds(), s.recorders.size());
  }
  return 0;
}
