// Data-mule patrol: a researcher walks the deployment once a day to harvest
// recordings (paper §I: "data retrieval is done either by occasionally
// sending data mules into the field or by physically collecting the sensor
// nodes"). Shows how periodic visits keep a storage-constrained network
// recording indefinitely, and how the basestation merges each day's haul.
#include <cstdio>
#include <memory>

#include "enviromic.h"

using namespace enviromic;

int main() {
  core::WorldConfig config;
  config.seed = 808;
  config.node_defaults = core::paper_node_params(core::Mode::kCooperativeOnly,
                                                 2.0);
  // A small flash makes the storage pressure visible in minutes.
  config.node_defaults.flash.capacity_bytes = 64 * 1024;
  core::World world(config);
  core::grid_deployment(world, 6, 4, 2.0);

  // Steady animal activity at a den site for one simulated "day" (30 min).
  sim::Rng rng = world.rng().fork("den");
  const double day = 1800.0;
  double t = 20.0;
  int events = 0;
  while (t < day) {
    const double dur = rng.uniform(3.0, 8.0);
    world.add_source(
        std::make_shared<acoustic::StaticTrajectory>(sim::Position{5, 3}),
        std::make_shared<acoustic::ToneWave>(rng.uniform(2.0, 5.0), 0.5),
        sim::Time::seconds(t), sim::Time::seconds(t + dur), 1.0, 2.5);
    ++events;
    t += rng.exponential(35.0);
  }
  std::printf("den site: %d calls over %.0f minutes; per-node flash %.0f KB "
              "(~%.0f s of audio)\n",
              events, day / 60.0, 64.0, 64.0 * 1024.0 / 2730.0);

  // Three patrols: the mule snakes through the grid.
  std::vector<std::unique_ptr<core::DataMule>> patrols;
  for (int visit = 0; visit < 3; ++visit) {
    core::MuleConfig mc;
    mc.mule_id = static_cast<net::NodeId>(61000 + visit);
    mc.speed_ft_s = 1.0;
    patrols.push_back(std::make_unique<core::DataMule>(
        world, std::vector<sim::Position>{{-3, 1}, {12, 1}, {12, 5}, {-3, 5}},
        sim::Time::seconds(day * (visit + 1) / 4.0), mc));
  }

  world.start();
  for (auto& p : patrols) p->start();
  world.run_until(sim::Time::seconds(day + 60.0));

  std::vector<storage::ChunkMeta> haul;
  std::printf("\npatrol results:\n");
  for (std::size_t v = 0; v < patrols.size(); ++v) {
    std::printf("  patrol %zu: %zu chunks, %.1f KB\n", v + 1,
                patrols[v]->chunks_collected(),
                static_cast<double>(patrols[v]->bytes_collected()) / 1024.0);
    haul.insert(haul.end(), patrols[v]->collected_metas().begin(),
                patrols[v]->collected_metas().end());
  }

  const auto in_network = world.snapshot();
  const auto total = world.snapshot_with(haul);
  std::printf("\ncoverage still in the network : %.1f s (miss %.1f%%)\n",
              in_network.covered_unique.to_seconds(),
              in_network.miss_ratio * 100.0);
  std::printf("coverage including the haul   : %.1f s (miss %.1f%%)\n",
              total.covered_unique.to_seconds(), total.miss_ratio * 100.0);

  // The basestation merges each haul's files into vocalizations.
  storage::FileIndex all;
  for (const auto& m : haul) all.add(m, 0);
  const auto final_index = world.drain_all(false);
  for (const auto& event : final_index.events()) {
    for (const auto& c : final_index.chunks_of(event)) all.add(c, 0);
  }
  all.deduplicate();
  std::map<net::NodeId, sim::Position> positions;
  for (std::size_t i = 0; i < world.node_count(); ++i) {
    positions[world.node(i).id()] = world.node(i).position();
  }
  const auto vocal = analysis::correlate_files(all, positions);
  std::printf("basestation: %zu files merge into %zu vocalizations "
              "(%d true calls)\n",
              all.file_count(), vocal.size(), events);
  return 0;
}
