// Bird vocalization monitoring — the paper's motivating deployment plan
// (§IV-D): when and where do birds sing? A forest network records scattered
// bird calls over a simulated dawn hour, including a "dawn chorus" burst,
// then reports per-species-site call counts and the temporal profile a
// field biologist would extract.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "enviromic.h"

using namespace enviromic;

int main() {
  core::WorldConfig config;
  config.seed = 99;
  config.channel.comm_range = 40.0;  // outdoor motes, tens of feet apart
  config.node_defaults = core::paper_node_params(core::Mode::kFull, 2.0);
  core::World world(config);

  // 20 motes scattered over a 150x150 ft woodlot.
  auto positions = core::forest_deployment(world, 20, 150.0, 150.0, 15.0,
                                           world.rng().fork("deploy"));

  // Three favourite singing perches; calls cluster there.
  const std::vector<sim::Position> perches = {
      {30.0, 120.0}, {90.0, 40.0}, {130.0, 130.0}};

  // One simulated hour. Background singing all hour; a dawn chorus burst in
  // minutes 20-35 where the call rate quadruples.
  sim::Rng rng = world.rng().fork("birds");
  const double hour = 3600.0;
  int calls = 0;
  double t = rng.exponential(40.0);
  while (t < hour) {
    const bool chorus = t >= 1200.0 && t < 2100.0;
    const auto& perch = perches[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(perches.size()) - 1))];
    sim::Position at{perch.x + rng.uniform(-8.0, 8.0),
                     perch.y + rng.uniform(-8.0, 8.0)};
    const double dur = rng.uniform(2.0, 8.0);
    world.add_source(std::make_shared<acoustic::StaticTrajectory>(at),
                     std::make_shared<acoustic::ToneWave>(
                         rng.uniform(2.5, 6.0), rng.uniform(0.3, 0.8)),
                     sim::Time::seconds(t), sim::Time::seconds(t + dur),
                     rng.uniform(0.7, 1.0), rng.uniform(18.0, 30.0));
    ++calls;
    t += rng.exponential(chorus ? 10.0 : 40.0);
  }
  std::printf("scheduled %d bird calls over one hour (dawn chorus at "
              "20-35 min)\n",
              calls);

  world.start();
  world.run_until(sim::Time::seconds(hour + 30.0));

  const auto snap = world.snapshot();
  std::printf("\ncaptured %.1f of %.1f hearable seconds (miss %.1f%%)\n",
              snap.covered_unique.to_seconds(), snap.hearable.to_seconds(),
              snap.miss_ratio * 100.0);

  // The biologist's question: how does vocalization rate change over time?
  std::vector<double> per_5min(13, 0.0);
  for (const auto& act : world.metrics().recording_log()) {
    if (!act.appended) continue;
    const auto bin = static_cast<std::size_t>(
        std::min(12.0, act.start.to_seconds() / 300.0));
    per_5min[bin] += (act.end - act.start).to_seconds();
  }
  std::printf("\nrecorded audio per 5-minute bin (dawn chorus should "
              "stand out):\n");
  for (std::size_t b = 0; b < per_5min.size(); ++b) {
    std::printf("  %3zu-%3zu min: %6.1f s  %s\n", b * 5, b * 5 + 5,
                per_5min[b],
                std::string(static_cast<std::size_t>(per_5min[b] / 10.0), '#')
                    .c_str());
  }

  // Basestation analysis: reassemble files, merge ones that refer to the
  // same vocalization, and count calls per 5-minute bin.
  const auto files = world.drain_all();
  std::map<net::NodeId, sim::Position> node_positions;
  for (std::size_t i = 0; i < world.node_count(); ++i) {
    node_positions[world.node(i).id()] = world.node(i).position();
  }
  const auto vocal = analysis::correlate_files(files, node_positions);
  std::printf("\nretrieved %zu files -> %zu distinct vocalizations "
              "(%d true calls scheduled)\n",
              files.file_count(), vocal.size(), calls);
  const auto profile = analysis::activity_profile(
      vocal, sim::Time::seconds(hour), sim::Time::seconds_i(300));
  std::printf("vocalizations per 5-minute bin:");
  for (std::size_t b = 0; b + 1 < profile.events_per_bin.size(); ++b) {
    std::printf(" %zu", profile.events_per_bin[b]);
  }
  std::printf("\n");

  // Where were the calls? Map recorded volume back to recorder locations.
  std::printf("\nbusiest recording sites:\n");
  std::vector<std::pair<double, std::size_t>> by_node;
  for (std::size_t i = 0; i < world.node_count(); ++i) {
    double secs = 0;
    for (const auto& act : world.metrics().recording_log()) {
      if (act.node == world.node(i).id() && act.appended)
        secs += (act.end - act.start).to_seconds();
    }
    by_node.push_back({secs, i});
  }
  std::sort(by_node.rbegin(), by_node.rend());
  for (std::size_t k = 0; k < 5 && k < by_node.size(); ++k) {
    const auto& p = positions[by_node[k].second];
    std::printf("  node %2u at (%5.1f, %5.1f): %.1f s\n",
                world.node(by_node[k].second).id(), p.x, p.y, by_node[k].first);
  }
  std::printf("\n(perches were at (30,120), (90,40), (130,130))\n");
  return 0;
}
