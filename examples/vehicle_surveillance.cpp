// Audio surveillance of (military) targets — the paper's second motivating
// application. A line of motes monitors a road; vehicles pass at different
// speeds and loudness. The network records cooperatively; afterwards we
// reconstruct a per-vehicle log (time, direction, duration) from the
// distributed files, as an analyst at the basestation would.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "enviromic.h"

using namespace enviromic;

int main() {
  core::WorldConfig config;
  config.seed = 1717;
  config.channel.comm_range = 50.0;
  config.node_defaults = core::paper_node_params(core::Mode::kFull, 2.0);
  core::World world(config);

  // 12 motes in a picket line 25 ft apart along the road (x axis).
  for (int i = 0; i < 12; ++i) {
    world.add_node(sim::Position{25.0 * i, 10.0});
  }

  // Vehicles over 20 minutes: alternating directions, varied speed/loudness.
  struct VehicleTruth {
    double t_start;
    bool eastbound;
    double speed;
  };
  std::vector<VehicleTruth> truth;
  sim::Rng rng = world.rng().fork("vehicles");
  double t = 20.0;
  while (t < 1200.0) {
    const bool eastbound = rng.chance(0.5);
    const double speed = rng.uniform(30.0, 60.0);  // ft/s
    const double span = 11 * 25.0 + 120.0;
    const double dur = span / speed;
    const sim::Position start =
        eastbound ? sim::Position{-60.0, 0.0} : sim::Position{11 * 25.0 + 60.0, 0.0};
    world.add_source(
        std::make_shared<acoustic::LinearTrajectory>(
            start, eastbound ? speed : -speed, 0.0),
        std::make_shared<acoustic::RumbleWave>(rng.next_u64()),
        sim::Time::seconds(t), sim::Time::seconds(t + dur),
        rng.uniform(0.8, 1.3), rng.uniform(35.0, 55.0));
    truth.push_back({t, eastbound, speed});
    t += rng.exponential(70.0);
  }
  std::printf("ground truth: %zu vehicle passes over 20 minutes\n",
              truth.size());

  world.start();
  world.run_until(sim::Time::seconds_i(1260));

  // Analyst view: reassemble files, infer passes from chunk timelines.
  const auto files = world.drain_all();
  std::printf("retrieved %zu files (%zu chunks)\n\n", files.file_count(),
              files.chunk_count());
  std::printf("%-8s %-10s %-10s %-8s %-10s %-9s\n", "file", "start(s)",
              "dur(s)", "chunks", "recorders", "direction");
  std::size_t matched = 0;
  for (const auto& event : files.events()) {
    const auto s = files.summarize(event);
    if (s.covered.to_seconds() < 2.0) continue;  // noise blips
    // Direction: do recorder node ids (west->east placement order) trend
    // up or down over the chunks?
    const auto chunks = files.chunks_of(event);
    double trend = 0;
    for (std::size_t i = 1; i < chunks.size(); ++i) {
      trend += static_cast<double>(chunks[i].recorded_by) -
               static_cast<double>(chunks[i - 1].recorded_by);
    }
    const char* dir = trend > 0 ? "eastbound" : trend < 0 ? "westbound" : "?";
    std::printf("%-8s %-10.1f %-10.1f %-8zu %-10zu %-9s\n",
                event.valid() ? event.str().c_str() : "(local)",
                s.first_start.to_seconds(),
                (s.last_end - s.first_start).to_seconds(), s.chunk_count,
                s.recorders.size(), dir);
    ++matched;
  }
  std::printf("\nreconstructed %zu vehicle tracks from %zu true passes\n",
              matched, truth.size());

  const auto snap = world.snapshot();
  std::printf("coverage: %.1f%% of hearable vehicle audio captured\n",
              100.0 * (1.0 - snap.miss_ratio));
  return 0;
}
