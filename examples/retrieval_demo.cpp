// Data retrieval demo (paper §II-C): after a recording period, a user with
// a laptop (the "data mule") walks up to the network and issues queries.
// Shows (a) the single-hop query the paper settled on, (b) the spanning-
// tree flooded variant for in-field spot checks, and (c) physical
// collection (drain_all), plus crash recovery of a failed mote's flash from
// its EEPROM checkpoint.
#include <cstdio>
#include <memory>

#include "enviromic.h"

using namespace enviromic;

int main() {
  core::WorldConfig config;
  config.seed = 555;
  config.node_defaults = core::paper_node_params(core::Mode::kFull, 2.0);
  core::World world(config);
  core::grid_deployment(world, 6, 4, 2.0);

  // A few events across the grid.
  sim::Rng rng = world.rng().fork("events");
  for (int i = 0; i < 6; ++i) {
    const sim::Position at{rng.uniform(1.0, 9.0), rng.uniform(1.0, 5.0)};
    const double start = 5.0 + i * 20.0;
    world.add_source(std::make_shared<acoustic::StaticTrajectory>(at),
                     std::make_shared<acoustic::ConstantWave>(1.0),
                     sim::Time::seconds(start),
                     sim::Time::seconds(start + rng.uniform(4.0, 8.0)), 1.0,
                     2.5);
  }
  world.start();
  world.run_until(sim::Time::seconds_i(140));

  // (a) Single-hop query from the corner node (the mule stands next to it).
  auto& sink = world.node(0);
  std::size_t single_hop = 0;
  sink.retrieval().start_query(
      sim::Time::zero(), sim::Time::seconds_i(140), /*hops=*/1,
      [&](const net::QueryReply&) { ++single_hop; });
  world.run_for(sim::Time::seconds_i(5));
  std::printf("(a) single-hop query at corner node: %zu chunk descriptors\n",
              single_hop);

  // (b) Spanning-tree flood (3 hops): the query builds a tree and replies
  // route hop-by-hop back to the sink — the paper's first §II-C design.
  std::size_t flooded = 0;
  sink.retrieval().start_query(
      sim::Time::zero(), sim::Time::seconds_i(140), /*hops=*/3,
      [&](const net::QueryReply&) { ++flooded; });
  world.run_for(sim::Time::seconds_i(10));
  std::printf("(b) 3-hop spanning-tree query: %zu descriptors (replies "
              "relayed up the tree)\n",
              flooded);

  // (c) Physical collection: the common case ("the user acts as the data
  // mule when they physically collect the motes").
  const auto files = world.drain_all();
  std::printf("(c) physical collection: %zu files, %zu chunks total\n",
              files.file_count(), files.chunk_count());
  for (const auto& event : files.events()) {
    const auto s = files.summarize(event);
    std::printf("    %-10s %2zu chunks  %6llu B  gaps:%zu  placement:",
                event.valid() ? event.str().c_str() : "(local)",
                s.chunk_count, static_cast<unsigned long long>(s.total_bytes),
                s.gaps.size());
    for (const auto& [node, count] : files.placement_of(event)) {
      std::printf(" %u:%zu", node, count);
    }
    std::printf("\n");
  }

  // (d) Crash recovery: node 5 "fails"; rebuild its store from flash OOB
  // tags + the EEPROM head/tail checkpoint (paper §III-B.3).
  auto& victim = world.node(5);
  victim.store().checkpoint();
  const auto before = victim.store().chunk_count();
  auto recovered =
      storage::ChunkStore::recover(victim.flash(), victim.eeprom());
  std::printf("\n(d) crash recovery of node %u: %zu chunks before, %zu "
              "recovered from flash+EEPROM\n",
              victim.id(), before, recovered.chunk_count());
  return 0;
}
