
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/acoustic/detector.cpp" "src/CMakeFiles/enviromic.dir/acoustic/detector.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/acoustic/detector.cpp.o.d"
  "/root/repo/src/acoustic/field.cpp" "src/CMakeFiles/enviromic.dir/acoustic/field.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/acoustic/field.cpp.o.d"
  "/root/repo/src/acoustic/microphone.cpp" "src/CMakeFiles/enviromic.dir/acoustic/microphone.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/acoustic/microphone.cpp.o.d"
  "/root/repo/src/acoustic/mobility.cpp" "src/CMakeFiles/enviromic.dir/acoustic/mobility.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/acoustic/mobility.cpp.o.d"
  "/root/repo/src/acoustic/sampler.cpp" "src/CMakeFiles/enviromic.dir/acoustic/sampler.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/acoustic/sampler.cpp.o.d"
  "/root/repo/src/acoustic/source.cpp" "src/CMakeFiles/enviromic.dir/acoustic/source.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/acoustic/source.cpp.o.d"
  "/root/repo/src/acoustic/waveform.cpp" "src/CMakeFiles/enviromic.dir/acoustic/waveform.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/acoustic/waveform.cpp.o.d"
  "/root/repo/src/analysis/correlate.cpp" "src/CMakeFiles/enviromic.dir/analysis/correlate.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/analysis/correlate.cpp.o.d"
  "/root/repo/src/core/balancer.cpp" "src/CMakeFiles/enviromic.dir/core/balancer.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/core/balancer.cpp.o.d"
  "/root/repo/src/core/bulk_transfer.cpp" "src/CMakeFiles/enviromic.dir/core/bulk_transfer.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/core/bulk_transfer.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/enviromic.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/core/config.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/enviromic.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/faults.cpp" "src/CMakeFiles/enviromic.dir/core/faults.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/core/faults.cpp.o.d"
  "/root/repo/src/core/ground_truth.cpp" "src/CMakeFiles/enviromic.dir/core/ground_truth.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/core/ground_truth.cpp.o.d"
  "/root/repo/src/core/group.cpp" "src/CMakeFiles/enviromic.dir/core/group.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/core/group.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/enviromic.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/mule.cpp" "src/CMakeFiles/enviromic.dir/core/mule.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/core/mule.cpp.o.d"
  "/root/repo/src/core/neighborhood.cpp" "src/CMakeFiles/enviromic.dir/core/neighborhood.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/core/neighborhood.cpp.o.d"
  "/root/repo/src/core/node.cpp" "src/CMakeFiles/enviromic.dir/core/node.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/core/node.cpp.o.d"
  "/root/repo/src/core/recorder.cpp" "src/CMakeFiles/enviromic.dir/core/recorder.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/core/recorder.cpp.o.d"
  "/root/repo/src/core/retrieval.cpp" "src/CMakeFiles/enviromic.dir/core/retrieval.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/core/retrieval.cpp.o.d"
  "/root/repo/src/core/tasking.cpp" "src/CMakeFiles/enviromic.dir/core/tasking.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/core/tasking.cpp.o.d"
  "/root/repo/src/core/timesync.cpp" "src/CMakeFiles/enviromic.dir/core/timesync.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/core/timesync.cpp.o.d"
  "/root/repo/src/core/workload.cpp" "src/CMakeFiles/enviromic.dir/core/workload.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/core/workload.cpp.o.d"
  "/root/repo/src/core/world.cpp" "src/CMakeFiles/enviromic.dir/core/world.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/core/world.cpp.o.d"
  "/root/repo/src/energy/battery.cpp" "src/CMakeFiles/enviromic.dir/energy/battery.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/energy/battery.cpp.o.d"
  "/root/repo/src/energy/energy_model.cpp" "src/CMakeFiles/enviromic.dir/energy/energy_model.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/energy/energy_model.cpp.o.d"
  "/root/repo/src/net/channel.cpp" "src/CMakeFiles/enviromic.dir/net/channel.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/net/channel.cpp.o.d"
  "/root/repo/src/net/message.cpp" "src/CMakeFiles/enviromic.dir/net/message.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/net/message.cpp.o.d"
  "/root/repo/src/net/radio.cpp" "src/CMakeFiles/enviromic.dir/net/radio.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/net/radio.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/enviromic.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/log.cpp" "src/CMakeFiles/enviromic.dir/sim/log.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/sim/log.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/CMakeFiles/enviromic.dir/sim/rng.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/sim/rng.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/enviromic.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/sim/scheduler.cpp.o.d"
  "/root/repo/src/sim/time.cpp" "src/CMakeFiles/enviromic.dir/sim/time.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/sim/time.cpp.o.d"
  "/root/repo/src/storage/chunk.cpp" "src/CMakeFiles/enviromic.dir/storage/chunk.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/storage/chunk.cpp.o.d"
  "/root/repo/src/storage/chunk_store.cpp" "src/CMakeFiles/enviromic.dir/storage/chunk_store.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/storage/chunk_store.cpp.o.d"
  "/root/repo/src/storage/codec.cpp" "src/CMakeFiles/enviromic.dir/storage/codec.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/storage/codec.cpp.o.d"
  "/root/repo/src/storage/eeprom.cpp" "src/CMakeFiles/enviromic.dir/storage/eeprom.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/storage/eeprom.cpp.o.d"
  "/root/repo/src/storage/file_index.cpp" "src/CMakeFiles/enviromic.dir/storage/file_index.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/storage/file_index.cpp.o.d"
  "/root/repo/src/storage/flash.cpp" "src/CMakeFiles/enviromic.dir/storage/flash.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/storage/flash.cpp.o.d"
  "/root/repo/src/util/contour.cpp" "src/CMakeFiles/enviromic.dir/util/contour.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/util/contour.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/enviromic.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/enviromic.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/util/table.cpp.o.d"
  "/root/repo/src/util/wav.cpp" "src/CMakeFiles/enviromic.dir/util/wav.cpp.o" "gcc" "src/CMakeFiles/enviromic.dir/util/wav.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
