file(REMOVE_RECURSE
  "libenviromic.a"
)
