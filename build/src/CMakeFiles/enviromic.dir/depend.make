# Empty dependencies file for enviromic.
# This may be replaced when dependencies are built.
