# Empty compiler generated dependencies file for fig03_sampling_jitter.
# This may be replaced when dependencies are built.
