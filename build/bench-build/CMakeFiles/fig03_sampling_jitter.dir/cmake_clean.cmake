file(REMOVE_RECURSE
  "../bench/fig03_sampling_jitter"
  "../bench/fig03_sampling_jitter.pdb"
  "CMakeFiles/fig03_sampling_jitter.dir/fig03_sampling_jitter.cpp.o"
  "CMakeFiles/fig03_sampling_jitter.dir/fig03_sampling_jitter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_sampling_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
