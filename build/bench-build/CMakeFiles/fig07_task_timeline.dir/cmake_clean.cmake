file(REMOVE_RECURSE
  "../bench/fig07_task_timeline"
  "../bench/fig07_task_timeline.pdb"
  "CMakeFiles/fig07_task_timeline.dir/fig07_task_timeline.cpp.o"
  "CMakeFiles/fig07_task_timeline.dir/fig07_task_timeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_task_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
