# Empty dependencies file for fig07_task_timeline.
# This may be replaced when dependencies are built.
