# Empty compiler generated dependencies file for ablation_prelude.
# This may be replaced when dependencies are built.
