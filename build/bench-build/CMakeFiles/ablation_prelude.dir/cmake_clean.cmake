file(REMOVE_RECURSE
  "../bench/ablation_prelude"
  "../bench/ablation_prelude.pdb"
  "CMakeFiles/ablation_prelude.dir/ablation_prelude.cpp.o"
  "CMakeFiles/ablation_prelude.dir/ablation_prelude.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prelude.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
