# Empty dependencies file for fig08_voice_stitching.
# This may be replaced when dependencies are built.
