file(REMOVE_RECURSE
  "../bench/fig08_voice_stitching"
  "../bench/fig08_voice_stitching.pdb"
  "CMakeFiles/fig08_voice_stitching.dir/fig08_voice_stitching.cpp.o"
  "CMakeFiles/fig08_voice_stitching.dir/fig08_voice_stitching.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_voice_stitching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
