# Empty dependencies file for fig14_overhead_contour.
# This may be replaced when dependencies are built.
