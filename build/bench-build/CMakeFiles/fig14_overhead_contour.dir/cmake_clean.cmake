file(REMOVE_RECURSE
  "../bench/fig14_overhead_contour"
  "../bench/fig14_overhead_contour.pdb"
  "CMakeFiles/fig14_overhead_contour.dir/fig14_overhead_contour.cpp.o"
  "CMakeFiles/fig14_overhead_contour.dir/fig14_overhead_contour.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_overhead_contour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
