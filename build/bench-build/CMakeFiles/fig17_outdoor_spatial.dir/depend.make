# Empty dependencies file for fig17_outdoor_spatial.
# This may be replaced when dependencies are built.
