file(REMOVE_RECURSE
  "../bench/fig17_outdoor_spatial"
  "../bench/fig17_outdoor_spatial.pdb"
  "CMakeFiles/fig17_outdoor_spatial.dir/fig17_outdoor_spatial.cpp.o"
  "CMakeFiles/fig17_outdoor_spatial.dir/fig17_outdoor_spatial.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_outdoor_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
