file(REMOVE_RECURSE
  "../bench/fig13_storage_contour"
  "../bench/fig13_storage_contour.pdb"
  "CMakeFiles/fig13_storage_contour.dir/fig13_storage_contour.cpp.o"
  "CMakeFiles/fig13_storage_contour.dir/fig13_storage_contour.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_storage_contour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
