# Empty dependencies file for fig10_miss_ratio.
# This may be replaced when dependencies are built.
