file(REMOVE_RECURSE
  "../bench/fig12_messages"
  "../bench/fig12_messages.pdb"
  "CMakeFiles/fig12_messages.dir/fig12_messages.cpp.o"
  "CMakeFiles/fig12_messages.dir/fig12_messages.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
