# Empty dependencies file for fig12_messages.
# This may be replaced when dependencies are built.
