file(REMOVE_RECURSE
  "../bench/fig16_outdoor_temporal"
  "../bench/fig16_outdoor_temporal.pdb"
  "CMakeFiles/fig16_outdoor_temporal.dir/fig16_outdoor_temporal.cpp.o"
  "CMakeFiles/fig16_outdoor_temporal.dir/fig16_outdoor_temporal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_outdoor_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
