# Empty compiler generated dependencies file for fig16_outdoor_temporal.
# This may be replaced when dependencies are built.
