# Empty compiler generated dependencies file for ext_tree_retrieval.
# This may be replaced when dependencies are built.
