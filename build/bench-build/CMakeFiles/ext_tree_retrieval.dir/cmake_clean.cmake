file(REMOVE_RECURSE
  "../bench/ext_tree_retrieval"
  "../bench/ext_tree_retrieval.pdb"
  "CMakeFiles/ext_tree_retrieval.dir/ext_tree_retrieval.cpp.o"
  "CMakeFiles/ext_tree_retrieval.dir/ext_tree_retrieval.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_tree_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
