file(REMOVE_RECURSE
  "../bench/fig18_migration"
  "../bench/fig18_migration.pdb"
  "CMakeFiles/fig18_migration.dir/fig18_migration.cpp.o"
  "CMakeFiles/fig18_migration.dir/fig18_migration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
