file(REMOVE_RECURSE
  "../bench/fig06_miss_vs_dta"
  "../bench/fig06_miss_vs_dta.pdb"
  "CMakeFiles/fig06_miss_vs_dta.dir/fig06_miss_vs_dta.cpp.o"
  "CMakeFiles/fig06_miss_vs_dta.dir/fig06_miss_vs_dta.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_miss_vs_dta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
