# Empty dependencies file for fig06_miss_vs_dta.
# This may be replaced when dependencies are built.
