# Empty dependencies file for fig11_redundancy.
# This may be replaced when dependencies are built.
