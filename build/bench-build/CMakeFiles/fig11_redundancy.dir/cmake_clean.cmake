file(REMOVE_RECURSE
  "../bench/fig11_redundancy"
  "../bench/fig11_redundancy.pdb"
  "CMakeFiles/fig11_redundancy.dir/fig11_redundancy.cpp.o"
  "CMakeFiles/fig11_redundancy.dir/fig11_redundancy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
