# Empty compiler generated dependencies file for ext_global_balancing.
# This may be replaced when dependencies are built.
