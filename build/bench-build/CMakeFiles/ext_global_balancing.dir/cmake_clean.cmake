file(REMOVE_RECURSE
  "../bench/ext_global_balancing"
  "../bench/ext_global_balancing.pdb"
  "CMakeFiles/ext_global_balancing.dir/ext_global_balancing.cpp.o"
  "CMakeFiles/ext_global_balancing.dir/ext_global_balancing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_global_balancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
