file(REMOVE_RECURSE
  "../bench/ext_data_mule"
  "../bench/ext_data_mule.pdb"
  "CMakeFiles/ext_data_mule.dir/ext_data_mule.cpp.o"
  "CMakeFiles/ext_data_mule.dir/ext_data_mule.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_data_mule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
