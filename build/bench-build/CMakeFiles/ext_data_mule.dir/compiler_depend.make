# Empty compiler generated dependencies file for ext_data_mule.
# This may be replaced when dependencies are built.
