# Empty compiler generated dependencies file for bird_monitoring.
# This may be replaced when dependencies are built.
