file(REMOVE_RECURSE
  "../examples/bird_monitoring"
  "../examples/bird_monitoring.pdb"
  "CMakeFiles/bird_monitoring.dir/bird_monitoring.cpp.o"
  "CMakeFiles/bird_monitoring.dir/bird_monitoring.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bird_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
