file(REMOVE_RECURSE
  "../examples/data_mule_patrol"
  "../examples/data_mule_patrol.pdb"
  "CMakeFiles/data_mule_patrol.dir/data_mule_patrol.cpp.o"
  "CMakeFiles/data_mule_patrol.dir/data_mule_patrol.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_mule_patrol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
