# Empty dependencies file for data_mule_patrol.
# This may be replaced when dependencies are built.
