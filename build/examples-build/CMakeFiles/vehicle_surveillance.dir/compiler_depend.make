# Empty compiler generated dependencies file for vehicle_surveillance.
# This may be replaced when dependencies are built.
