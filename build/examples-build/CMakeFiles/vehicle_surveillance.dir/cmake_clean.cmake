file(REMOVE_RECURSE
  "../examples/vehicle_surveillance"
  "../examples/vehicle_surveillance.pdb"
  "CMakeFiles/vehicle_surveillance.dir/vehicle_surveillance.cpp.o"
  "CMakeFiles/vehicle_surveillance.dir/vehicle_surveillance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vehicle_surveillance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
