# Empty dependencies file for retrieval_demo.
# This may be replaced when dependencies are built.
