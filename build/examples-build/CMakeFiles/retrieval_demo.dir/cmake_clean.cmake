file(REMOVE_RECURSE
  "../examples/retrieval_demo"
  "../examples/retrieval_demo.pdb"
  "CMakeFiles/retrieval_demo.dir/retrieval_demo.cpp.o"
  "CMakeFiles/retrieval_demo.dir/retrieval_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retrieval_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
