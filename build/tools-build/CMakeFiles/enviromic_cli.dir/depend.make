# Empty dependencies file for enviromic_cli.
# This may be replaced when dependencies are built.
