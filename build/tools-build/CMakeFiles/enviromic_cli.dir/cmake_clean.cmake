file(REMOVE_RECURSE
  "../tools/enviromic_cli"
  "../tools/enviromic_cli.pdb"
  "CMakeFiles/enviromic_cli.dir/enviromic_cli.cpp.o"
  "CMakeFiles/enviromic_cli.dir/enviromic_cli.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enviromic_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
