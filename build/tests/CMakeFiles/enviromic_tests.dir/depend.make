# Empty dependencies file for enviromic_tests.
# This may be replaced when dependencies are built.
