
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_acoustic.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_acoustic.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_acoustic.cpp.o.d"
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_balancer.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_balancer.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_balancer.cpp.o.d"
  "/root/repo/tests/test_bulk_transfer.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_bulk_transfer.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_bulk_transfer.cpp.o.d"
  "/root/repo/tests/test_channel.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_channel.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_channel.cpp.o.d"
  "/root/repo/tests/test_chaos.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_chaos.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_chaos.cpp.o.d"
  "/root/repo/tests/test_chunk_store.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_chunk_store.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_chunk_store.cpp.o.d"
  "/root/repo/tests/test_codec.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_codec.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_codec.cpp.o.d"
  "/root/repo/tests/test_detector.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_detector.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_detector.cpp.o.d"
  "/root/repo/tests/test_duty_gossip.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_duty_gossip.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_duty_gossip.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_energy.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_energy.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_energy.cpp.o.d"
  "/root/repo/tests/test_event_queue.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_event_queue.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_event_queue.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_faults.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_faults.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_faults.cpp.o.d"
  "/root/repo/tests/test_file_index.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_file_index.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_file_index.cpp.o.d"
  "/root/repo/tests/test_flash.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_flash.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_flash.cpp.o.d"
  "/root/repo/tests/test_group.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_group.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_group.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_intervals.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_intervals.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_intervals.cpp.o.d"
  "/root/repo/tests/test_line_topologies.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_line_topologies.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_line_topologies.cpp.o.d"
  "/root/repo/tests/test_log.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_log.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_log.cpp.o.d"
  "/root/repo/tests/test_messages.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_messages.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_messages.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_mule.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_mule.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_mule.cpp.o.d"
  "/root/repo/tests/test_neighborhood.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_neighborhood.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_neighborhood.cpp.o.d"
  "/root/repo/tests/test_node.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_node.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_node.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_recorder.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_recorder.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_recorder.cpp.o.d"
  "/root/repo/tests/test_recovery.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_recovery.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_recovery.cpp.o.d"
  "/root/repo/tests/test_retrieval.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_retrieval.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_retrieval.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_tasking.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_tasking.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_tasking.cpp.o.d"
  "/root/repo/tests/test_time.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_time.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_time.cpp.o.d"
  "/root/repo/tests/test_timesync.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_timesync.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_timesync.cpp.o.d"
  "/root/repo/tests/test_trace_logging.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_trace_logging.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_trace_logging.cpp.o.d"
  "/root/repo/tests/test_tree_retrieval.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_tree_retrieval.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_tree_retrieval.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_wav.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_wav.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_wav.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/enviromic_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/enviromic_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/enviromic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
